//go:build amd64 && !purego

#include "textflag.h"

// AVX2 variants of the kernel inner loops. Shared conventions:
//
//   - n is a multiple of 4 (the Go wrapper runs the remainder); every
//     loop retires 4 candidates/dimensions per iteration, except the
//     dense kernels' 16-wide main loop.
//   - The gather kernels must stay bit-identical to the scalar loops:
//     one addition per slot per column, vsubpd/vmulpd/vaddpd only —
//     never FMA, which rounds once where the scalar code rounds twice.
//   - VGATHERQPD zeroes its mask register, so the all-ones mask is
//     re-materialized (VPCMPEQD of a register with itself) before every
//     gather; mask, index, and destination must be distinct registers.
//   - min() is the Go builtin's ordering (−0 < +0, NaN poisons), which a
//     single VMINPD does not give: VMINPD returns its second source on
//     ties and NaNs. min_go(a,b) = VMINPD(a,b) | VMINPD(b,a) — on a tie
//     of ±0 the OR keeps the sign bit, on distinct values both minima
//     agree, and a NaN input ORs into a NaN.
//   - VZEROUPPER before every RET: the callers return into SSE-era
//     scalar code, and a dirty upper state would stall it.

// func accSqDistAVX2(score, col *float64, cands *int, n int, qd float64)
TEXT ·accSqDistAVX2(SB), NOSPLIT, $0-40
	MOVQ         score+0(FP), DI
	MOVQ         col+8(FP), SI
	MOVQ         cands+16(FP), DX
	MOVQ         n+24(FP), CX
	VBROADCASTSD qd+32(FP), Y0

sqloop:
	TESTQ      CX, CX
	JZ         sqdone
	VMOVDQU    (DX), Y1              // 4 candidate ids
	VPCMPEQD   Y2, Y2, Y2            // gather mask: all lanes active
	VGATHERQPD Y2, (SI)(Y1*8), Y3    // v = col[cands[i..i+3]]
	VSUBPD     Y0, Y3, Y4            // d = v - qd
	VMULPD     Y4, Y4, Y4            // d*d
	VMOVUPD    (DI), Y5
	VADDPD     Y4, Y5, Y5            // score += d*d
	VMOVUPD    Y5, (DI)
	ADDQ       $32, DI
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        sqloop

sqdone:
	VZEROUPPER
	RET

// func accSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64)
TEXT ·accSqDistTailsAVX2(SB), NOSPLIT, $0-48
	MOVQ         score+0(FP), DI
	MOVQ         tails+8(FP), R8
	MOVQ         col+16(FP), SI
	MOVQ         cands+24(FP), DX
	MOVQ         n+32(FP), CX
	VBROADCASTSD qd+40(FP), Y0

sqtloop:
	TESTQ      CX, CX
	JZ         sqtdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VSUBPD     Y0, Y3, Y4
	VMULPD     Y4, Y4, Y4
	VMOVUPD    (DI), Y5
	VADDPD     Y4, Y5, Y5
	VMOVUPD    Y5, (DI)
	VMOVUPD    (R8), Y6
	VSUBPD     Y3, Y6, Y6            // tails -= v
	VMOVUPD    Y6, (R8)
	ADDQ       $32, DI
	ADDQ       $32, R8
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        sqtloop

sqtdone:
	VZEROUPPER
	RET

// func accWSqDistAVX2(score, col *float64, cands *int, n int, qd, w float64)
TEXT ·accWSqDistAVX2(SB), NOSPLIT, $0-48
	MOVQ         score+0(FP), DI
	MOVQ         col+8(FP), SI
	MOVQ         cands+16(FP), DX
	MOVQ         n+24(FP), CX
	VBROADCASTSD qd+32(FP), Y0
	VBROADCASTSD w+40(FP), Y7

wsqloop:
	TESTQ      CX, CX
	JZ         wsqdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VSUBPD     Y0, Y3, Y4            // d
	VMULPD     Y4, Y7, Y5            // w*d
	VMULPD     Y4, Y5, Y5            // (w*d)*d — the scalar association
	VMOVUPD    (DI), Y6
	VADDPD     Y5, Y6, Y6
	VMOVUPD    Y6, (DI)
	ADDQ       $32, DI
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        wsqloop

wsqdone:
	VZEROUPPER
	RET

// func accWSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd, w float64)
TEXT ·accWSqDistTailsAVX2(SB), NOSPLIT, $0-56
	MOVQ         score+0(FP), DI
	MOVQ         tails+8(FP), R8
	MOVQ         col+16(FP), SI
	MOVQ         cands+24(FP), DX
	MOVQ         n+32(FP), CX
	VBROADCASTSD qd+40(FP), Y0
	VBROADCASTSD w+48(FP), Y7

wsqtloop:
	TESTQ      CX, CX
	JZ         wsqtdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VSUBPD     Y0, Y3, Y4
	VMULPD     Y4, Y7, Y5
	VMULPD     Y4, Y5, Y5
	VMOVUPD    (DI), Y6
	VADDPD     Y5, Y6, Y6
	VMOVUPD    Y6, (DI)
	VMOVUPD    (R8), Y6
	VSUBPD     Y3, Y6, Y6
	VMOVUPD    Y6, (R8)
	ADDQ       $32, DI
	ADDQ       $32, R8
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        wsqtloop

wsqtdone:
	VZEROUPPER
	RET

// func accMinQAVX2(score, col *float64, cands *int, n int, qd float64)
TEXT ·accMinQAVX2(SB), NOSPLIT, $0-40
	MOVQ         score+0(FP), DI
	MOVQ         col+8(FP), SI
	MOVQ         cands+16(FP), DX
	MOVQ         n+24(FP), CX
	VBROADCASTSD qd+32(FP), Y0

mqloop:
	TESTQ      CX, CX
	JZ         mqdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3    // v
	VMINPD     Y0, Y3, Y4            // min(v,q), ties/NaN -> q
	VMINPD     Y3, Y0, Y5            // min(q,v), ties/NaN -> v
	VORPD      Y5, Y4, Y4            // Go min semantics
	VMOVUPD    (DI), Y6
	VADDPD     Y4, Y6, Y6
	VMOVUPD    Y6, (DI)
	ADDQ       $32, DI
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        mqloop

mqdone:
	VZEROUPPER
	RET

// func accMinQTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64)
TEXT ·accMinQTailsAVX2(SB), NOSPLIT, $0-48
	MOVQ         score+0(FP), DI
	MOVQ         tails+8(FP), R8
	MOVQ         col+16(FP), SI
	MOVQ         cands+24(FP), DX
	MOVQ         n+32(FP), CX
	VBROADCASTSD qd+40(FP), Y0

mqtloop:
	TESTQ      CX, CX
	JZ         mqtdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VMINPD     Y0, Y3, Y4
	VMINPD     Y3, Y0, Y5
	VORPD      Y5, Y4, Y4
	VMOVUPD    (DI), Y6
	VADDPD     Y4, Y6, Y6
	VMOVUPD    Y6, (DI)
	VMOVUPD    (R8), Y6
	VSUBPD     Y3, Y6, Y6
	VMOVUPD    Y6, (R8)
	ADDQ       $32, DI
	ADDQ       $32, R8
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        mqtloop

mqtdone:
	VZEROUPPER
	RET

// func accWMinQAVX2(score, col *float64, cands *int, n int, qd, w float64)
TEXT ·accWMinQAVX2(SB), NOSPLIT, $0-48
	MOVQ         score+0(FP), DI
	MOVQ         col+8(FP), SI
	MOVQ         cands+16(FP), DX
	MOVQ         n+24(FP), CX
	VBROADCASTSD qd+32(FP), Y0
	VBROADCASTSD w+40(FP), Y7

wmqloop:
	TESTQ      CX, CX
	JZ         wmqdone
	VMOVDQU    (DX), Y1
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VMINPD     Y0, Y3, Y4
	VMINPD     Y3, Y0, Y5
	VORPD      Y5, Y4, Y4
	VMULPD     Y4, Y7, Y4            // w*min
	VMOVUPD    (DI), Y6
	VADDPD     Y4, Y6, Y6
	VMOVUPD    Y6, (DI)
	ADDQ       $32, DI
	ADDQ       $32, DX
	SUBQ       $4, CX
	JMP        wmqloop

wmqdone:
	VZEROUPPER
	RET

// func accCodeBoundsAVX2(sLo, sHi *float64, codes *uint8, cands *int, n int, tLo, tHi *[256]float64)
TEXT ·accCodeBoundsAVX2(SB), NOSPLIT, $0-56
	MOVQ sLo+0(FP), DI
	MOVQ sHi+8(FP), SI
	MOVQ codes+16(FP), BX
	MOVQ cands+24(FP), DX
	MOVQ n+32(FP), CX
	MOVQ tLo+40(FP), R9
	MOVQ tHi+48(FP), R10

cbloop:
	TESTQ    CX, CX
	JZ       cbdone

	// The codes of 4 candidates are scattered bytes — no vector byte
	// gather exists, so load them scalar, pack into one dword, and
	// zero-extend to 4 qword table indices.
	MOVQ     0(DX), R11
	MOVBLZX  (BX)(R11*1), R12
	MOVQ     8(DX), R11
	MOVBLZX  (BX)(R11*1), R13
	MOVQ     16(DX), R11
	MOVBLZX  (BX)(R11*1), R14
	MOVQ     24(DX), R11
	MOVBLZX  (BX)(R11*1), AX
	SHLQ     $8, R13
	ORQ      R13, R12
	SHLQ     $16, R14
	ORQ      R14, R12
	SHLQ     $24, AX
	ORQ      AX, R12
	// VMOVQ, not MOVQ: a legacy-SSE write to X1 with dirty ymm uppers
	// pays an AVX/SSE state-transition penalty every iteration.
	VMOVQ    R12, X1
	VPMOVZXBQ X1, Y1

	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (R9)(Y1*8), Y3    // tLo[c]
	VMOVUPD    (DI), Y4
	VADDPD     Y3, Y4, Y4
	VMOVUPD    Y4, (DI)
	VPCMPEQD   Y5, Y5, Y5
	VGATHERQPD Y5, (R10)(Y1*8), Y6   // tHi[c]
	VMOVUPD    (SI), Y7
	VADDPD     Y6, Y7, Y7
	VMOVUPD    Y7, (SI)

	ADDQ     $32, DI
	ADDQ     $32, SI
	ADDQ     $32, DX
	SUBQ     $4, CX
	JMP      cbloop

cbdone:
	VZEROUPPER
	RET

DATA vaiota<>+0(SB)/8, $0
DATA vaiota<>+8(SB)/8, $256
DATA vaiota<>+16(SB)/8, $512
DATA vaiota<>+24(SB)/8, $768
GLOBL vaiota<>(SB), RODATA|NOPTR, $32

DATA vastep<>+0(SB)/8, $1024
DATA vastep<>+8(SB)/8, $1024
DATA vastep<>+16(SB)/8, $1024
DATA vastep<>+24(SB)/8, $1024
GLOBL vastep<>(SB), RODATA|NOPTR, $32

// func vaRowSumAVX2(tbl *float64, row *uint8, n int, out *[4]float64)
//
// Accumulator lane j sees exactly the dimensions 4k+j the scalar s_j
// sees, in the same order, so the lane partials are bit-identical to the
// scalar accumulators.
TEXT ·vaRowSumAVX2(SB), NOSPLIT, $0-32
	MOVQ    tbl+0(FP), SI
	MOVQ    row+8(FP), DX
	MOVQ    n+16(FP), CX
	MOVQ    out+24(FP), DI
	VXORPD  Y8, Y8, Y8               // lane accumulators
	VMOVDQU vaiota<>(SB), Y9         // {0,256,512,768} + d*256, d += 4/iter
	VMOVDQU vastep<>(SB), Y10

valoop:
	TESTQ      CX, CX
	JZ         vadone
	MOVL       (DX), R11             // 4 code bytes
	VMOVQ      R11, X1               // VEX-encoded: no SSE/AVX transition
	VPMOVZXBQ  X1, Y1
	VPADDQ     Y9, Y1, Y1            // idx = (d+j)*256 + row[d+j]
	VPCMPEQD   Y2, Y2, Y2
	VGATHERQPD Y2, (SI)(Y1*8), Y3
	VADDPD     Y3, Y8, Y8
	VPADDQ     Y10, Y9, Y9
	ADDQ       $4, DX
	SUBQ       $4, CX
	JMP        valoop

vadone:
	VMOVUPD Y8, (DI)
	VZEROUPPER
	RET

// func sqDistAVX2(v, q *float64, n int, out *[4]float64)
//
// Dense kernel: four independent vector accumulators, 16 elements per
// main-loop iteration, so the reduction order differs from the scalar
// code within its documented few-ulp tolerance.
TEXT ·sqDistAVX2(SB), NOSPLIT, $0-32
	MOVQ   v+0(FP), SI
	MOVQ   q+8(FP), DX
	MOVQ   n+16(FP), CX
	MOVQ   out+24(FP), DI
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

sd16:
	CMPQ    CX, $16
	JLT     sd4
	VMOVUPD 0(SI), Y1
	VMOVUPD 0(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y8, Y8
	VMOVUPD 32(SI), Y1
	VMOVUPD 32(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y9, Y9
	VMOVUPD 64(SI), Y1
	VMOVUPD 64(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y10, Y10
	VMOVUPD 96(SI), Y1
	VMOVUPD 96(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y11, Y11
	ADDQ    $128, SI
	ADDQ    $128, DX
	SUBQ    $16, CX
	JMP     sd16

sd4:
	TESTQ   CX, CX
	JZ      sddone
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMULPD  Y3, Y3, Y3
	VADDPD  Y3, Y8, Y8
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $4, CX
	JMP     sd4

sddone:
	VADDPD  Y9, Y8, Y8
	VADDPD  Y11, Y10, Y10
	VADDPD  Y10, Y8, Y8
	VMOVUPD Y8, (DI)
	VZEROUPPER
	RET

// func minSumAVX2(h, q *float64, n int, out *[4]float64)
TEXT ·minSumAVX2(SB), NOSPLIT, $0-32
	MOVQ   h+0(FP), SI
	MOVQ   q+8(FP), DX
	MOVQ   n+16(FP), CX
	MOVQ   out+24(FP), DI
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

ms16:
	CMPQ    CX, $16
	JLT     ms4
	VMOVUPD 0(SI), Y1
	VMOVUPD 0(DX), Y2
	VMINPD  Y2, Y1, Y3
	VMINPD  Y1, Y2, Y4
	VORPD   Y4, Y3, Y3
	VADDPD  Y3, Y8, Y8
	VMOVUPD 32(SI), Y1
	VMOVUPD 32(DX), Y2
	VMINPD  Y2, Y1, Y3
	VMINPD  Y1, Y2, Y4
	VORPD   Y4, Y3, Y3
	VADDPD  Y3, Y9, Y9
	VMOVUPD 64(SI), Y1
	VMOVUPD 64(DX), Y2
	VMINPD  Y2, Y1, Y3
	VMINPD  Y1, Y2, Y4
	VORPD   Y4, Y3, Y3
	VADDPD  Y3, Y10, Y10
	VMOVUPD 96(SI), Y1
	VMOVUPD 96(DX), Y2
	VMINPD  Y2, Y1, Y3
	VMINPD  Y1, Y2, Y4
	VORPD   Y4, Y3, Y3
	VADDPD  Y3, Y11, Y11
	ADDQ    $128, SI
	ADDQ    $128, DX
	SUBQ    $16, CX
	JMP     ms16

ms4:
	TESTQ   CX, CX
	JZ      msdone
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VMINPD  Y2, Y1, Y3
	VMINPD  Y1, Y2, Y4
	VORPD   Y4, Y3, Y3
	VADDPD  Y3, Y8, Y8
	ADDQ    $32, SI
	ADDQ    $32, DX
	SUBQ    $4, CX
	JMP     ms4

msdone:
	VADDPD  Y9, Y8, Y8
	VADDPD  Y11, Y10, Y10
	VADDPD  Y10, Y8, Y8
	VMOVUPD Y8, (DI)
	VZEROUPPER
	RET

// func wSqDistAVX2(v, q, w *float64, n int, out *[4]float64)
TEXT ·wSqDistAVX2(SB), NOSPLIT, $0-40
	MOVQ   v+0(FP), SI
	MOVQ   q+8(FP), DX
	MOVQ   w+16(FP), BX
	MOVQ   n+24(FP), CX
	MOVQ   out+32(FP), DI
	VXORPD Y8, Y8, Y8
	VXORPD Y9, Y9, Y9
	VXORPD Y10, Y10, Y10
	VXORPD Y11, Y11, Y11

ws16:
	CMPQ    CX, $16
	JLT     ws4
	VMOVUPD 0(SI), Y1
	VMOVUPD 0(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMOVUPD 0(BX), Y4
	VMULPD  Y3, Y4, Y4               // w*d
	VMULPD  Y3, Y4, Y4               // (w*d)*d
	VADDPD  Y4, Y8, Y8
	VMOVUPD 32(SI), Y1
	VMOVUPD 32(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMOVUPD 32(BX), Y4
	VMULPD  Y3, Y4, Y4
	VMULPD  Y3, Y4, Y4
	VADDPD  Y4, Y9, Y9
	VMOVUPD 64(SI), Y1
	VMOVUPD 64(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMOVUPD 64(BX), Y4
	VMULPD  Y3, Y4, Y4
	VMULPD  Y3, Y4, Y4
	VADDPD  Y4, Y10, Y10
	VMOVUPD 96(SI), Y1
	VMOVUPD 96(DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMOVUPD 96(BX), Y4
	VMULPD  Y3, Y4, Y4
	VMULPD  Y3, Y4, Y4
	VADDPD  Y4, Y11, Y11
	ADDQ    $128, SI
	ADDQ    $128, DX
	ADDQ    $128, BX
	SUBQ    $16, CX
	JMP     ws16

ws4:
	TESTQ   CX, CX
	JZ      wsdone
	VMOVUPD (SI), Y1
	VMOVUPD (DX), Y2
	VSUBPD  Y2, Y1, Y3
	VMOVUPD (BX), Y4
	VMULPD  Y3, Y4, Y4
	VMULPD  Y3, Y4, Y4
	VADDPD  Y4, Y8, Y8
	ADDQ    $32, SI
	ADDQ    $32, DX
	ADDQ    $32, BX
	SUBQ    $4, CX
	JMP     ws4

wsdone:
	VADDPD  Y9, Y8, Y8
	VADDPD  Y11, Y10, Y10
	VADDPD  Y10, Y8, Y8
	VMOVUPD Y8, (DI)
	VZEROUPPER
	RET

//go:build !amd64 || purego

package kernel

// hasAVX2 is a compile-time false here, so every dispatch branch in
// kernel.go folds away and the stubs below are dead code the linker
// drops — they exist only so the wrappers compile on every platform.
const hasAVX2 = false

func accSqDistAVX2(score, col *float64, cands *int, n int, qd float64) {
	panic("kernel: SIMD stub called")
}

func accSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64) {
	panic("kernel: SIMD stub called")
}

func accWSqDistAVX2(score, col *float64, cands *int, n int, qd, w float64) {
	panic("kernel: SIMD stub called")
}

func accWSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd, w float64) {
	panic("kernel: SIMD stub called")
}

func accMinQAVX2(score, col *float64, cands *int, n int, qd float64) {
	panic("kernel: SIMD stub called")
}

func accMinQTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64) {
	panic("kernel: SIMD stub called")
}

func accWMinQAVX2(score, col *float64, cands *int, n int, qd, w float64) {
	panic("kernel: SIMD stub called")
}

func accCodeBoundsAVX2(sLo, sHi *float64, codes *uint8, cands *int, n int, tLo, tHi *[256]float64) {
	panic("kernel: SIMD stub called")
}

func vaRowSumAVX2(tbl *float64, row *uint8, n int, out *[4]float64) {
	panic("kernel: SIMD stub called")
}

func sqDistAVX2(v, q *float64, n int, out *[4]float64) {
	panic("kernel: SIMD stub called")
}

func minSumAVX2(h, q *float64, n int, out *[4]float64) {
	panic("kernel: SIMD stub called")
}

func wSqDistAVX2(v, q, w *float64, n int, out *[4]float64) {
	panic("kernel: SIMD stub called")
}

package kernel

import (
	"math/rand"
	"testing"
)

// The micro-benchmarks pit each kernel against the scalar loop it replaced
// (the exact code that used to live in internal/core and internal/vafile).
// Run with:
//
//	go test -bench . -benchmem ./internal/kernel
//
// internal/bench.HotPath times the same pairs programmatically and records
// the speedups in BENCH_hotpath.json.

const benchN = 4096

func benchSetup() (col, score []float64, cands []int, qd float64) {
	rng := rand.New(rand.NewSource(1))
	col = make([]float64, benchN)
	score = make([]float64, benchN)
	cands = make([]int, benchN)
	for i := range col {
		col[i] = rng.Float64()
		cands[i] = i
	}
	return col, score, cands, 0.5
}

func BenchmarkAccSqDistKernel(b *testing.B) {
	col, score, cands, qd := benchSetup()
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		AccSqDist(score, col, cands, qd)
	}
}

func BenchmarkAccSqDistScalar(b *testing.B) {
	col, score, cands, qd := benchSetup()
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		for ci, id := range cands {
			d := col[id] - qd
			score[ci] += d * d
		}
	}
}

func BenchmarkAccMinQKernel(b *testing.B) {
	col, score, cands, qd := benchSetup()
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		AccMinQ(score, col, cands, qd)
	}
}

func BenchmarkAccMinQScalar(b *testing.B) {
	col, score, cands, qd := benchSetup()
	b.SetBytes(benchN * 8)
	for i := 0; i < b.N; i++ {
		// The pre-kernel engine loop: a data-dependent branch per cell.
		for ci, id := range cands {
			v := col[id]
			if v < qd {
				score[ci] += v
			} else {
				score[ci] += qd
			}
		}
	}
}

func BenchmarkSqDistKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	v, q := make([]float64, 166), make([]float64, 166)
	for i := range v {
		v[i], q[i] = rng.Float64(), rng.Float64()
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += SqDist(v, q)
	}
	_ = sink
}

func BenchmarkSqDistScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	v, q := make([]float64, 166), make([]float64, 166)
	for i := range v {
		v[i], q[i] = rng.Float64(), rng.Float64()
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		s := 0.0
		for d, x := range v {
			diff := x - q[d]
			s += diff * diff
		}
		sink += s
	}
	_ = sink
}

func BenchmarkVARowSumKernel(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const dims = 64
	tbl := make([]float64, dims*256)
	for i := range tbl {
		tbl[i] = rng.Float64()
	}
	row := make([]uint8, dims)
	for d := range row {
		row[d] = uint8(rng.Intn(256))
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += VARowSum(tbl, row)
	}
	_ = sink
}

func BenchmarkVARowSumScalar(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const dims = 64
	tbl := make([]float64, dims*256)
	for i := range tbl {
		tbl[i] = rng.Float64()
	}
	row := make([]uint8, dims)
	for d := range row {
		row[d] = uint8(rng.Intn(256))
	}
	var sink float64
	for i := 0; i < b.N; i++ {
		// The pre-kernel vafile loop: two interleaved accumulators.
		var l0, l1 float64
		d := 0
		for ; d+1 < dims; d += 2 {
			l0 += tbl[d*256+int(row[d])]
			l1 += tbl[(d+1)*256+int(row[d+1])]
		}
		if d < dims {
			l0 += tbl[d*256+int(row[d])]
		}
		sink += l0 + l1
	}
	_ = sink
}

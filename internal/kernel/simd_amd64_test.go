//go:build amd64 && !purego

package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// The gather kernels promise bit-identical results whichever implementation
// runs — that promise is what keeps every access path byte-equal to the
// sequential-scan oracle. These tests run each kernel twice, once with the
// AVX2 path forced on and once forced off, and compare the raw float bits.
// The dense kernels get a relative tolerance instead (documented few-ulp
// reduction-order difference).

func withAVX2(t *testing.T, on bool, f func()) {
	t.Helper()
	saved := hasAVX2
	hasAVX2 = on
	defer func() { hasAVX2 = saved }()
	f()
}

func requireAVX2(t *testing.T) {
	t.Helper()
	if !hasAVX2 {
		t.Skip("CPU has no AVX2; nothing to compare")
	}
}

// testColumn mixes ordinary values with the edge cases the min trick has
// to get right: exact ties with qd, and zeros of both signs.
func testColumn(rng *rand.Rand, n int, qd float64) []float64 {
	col := make([]float64, n)
	for i := range col {
		switch rng.Intn(8) {
		case 0:
			col[i] = qd // exact tie
		case 1:
			col[i] = 0.0
		case 2:
			col[i] = math.Copysign(0, -1) // -0
		default:
			col[i] = rng.NormFloat64()
		}
	}
	return col
}

func testCands(rng *rand.Rand, n, rows int) []int {
	cands := make([]int, n)
	for i := range cands {
		cands[i] = rng.Intn(rows)
	}
	return cands
}

// kernel lengths worth probing: below simdMin, at it, odd tails, and a
// large batch.
var equivLens = []int{0, 1, 3, 7, 8, 9, 12, 31, 64, 257, 1000}

func bitsEqual(a, b []float64) (int, bool) {
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return i, false
		}
	}
	return 0, true
}

func TestAccKernelsBitIdentical(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(7))
	const rows = 512
	qds := []float64{0.25, 0.0, math.Copysign(0, -1), -1.5}
	for _, n := range equivLens {
		for _, qd := range qds {
			col := testColumn(rng, rows, qd)
			cands := testCands(rng, n, rows)
			w := 0.37

			type run struct {
				name string
				f    func(score, tails []float64)
			}
			runs := []run{
				{"AccSqDist", func(s, _ []float64) { AccSqDist(s, col, cands, qd) }},
				{"AccSqDistTails", func(s, tl []float64) { AccSqDistTails(s, tl, col, cands, qd) }},
				{"AccWSqDist", func(s, _ []float64) { AccWSqDist(s, col, cands, qd, w) }},
				{"AccWSqDistTails", func(s, tl []float64) { AccWSqDistTails(s, tl, col, cands, qd, w) }},
				{"AccMinQ", func(s, _ []float64) { AccMinQ(s, col, cands, qd) }},
				{"AccMinQTails", func(s, tl []float64) { AccMinQTails(s, tl, col, cands, qd) }},
				{"AccWMinQ", func(s, _ []float64) { AccWMinQ(s, col, cands, qd, w) }},
			}
			for _, r := range runs {
				// Non-zero starting scores so the accumulate (not just the
				// per-slot term) is compared.
				base := make([]float64, n)
				baseT := make([]float64, n)
				for i := range base {
					base[i] = rng.NormFloat64()
					baseT[i] = rng.NormFloat64()
				}
				sA := append([]float64(nil), base...)
				tA := append([]float64(nil), baseT...)
				sG := append([]float64(nil), base...)
				tG := append([]float64(nil), baseT...)
				withAVX2(t, true, func() { r.f(sA, tA) })
				withAVX2(t, false, func() { r.f(sG, tG) })
				if i, ok := bitsEqual(sA, sG); !ok {
					t.Fatalf("%s n=%d qd=%v: score[%d] avx2=%x go=%x", r.name, n, qd, i,
						math.Float64bits(sA[i]), math.Float64bits(sG[i]))
				}
				if i, ok := bitsEqual(tA, tG); !ok {
					t.Fatalf("%s n=%d qd=%v: tails[%d] avx2=%x go=%x", r.name, n, qd, i,
						math.Float64bits(tA[i]), math.Float64bits(tG[i]))
				}
			}
		}
	}
}

func TestAccCodeBoundsBitIdentical(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(11))
	const rows = 512
	codes := make([]uint8, rows)
	for i := range codes {
		codes[i] = uint8(rng.Intn(256))
	}
	var tLo, tHi [256]float64
	for i := range tLo {
		tLo[i] = rng.NormFloat64()
		tHi[i] = tLo[i] + rng.Float64()
	}
	for _, n := range equivLens {
		cands := testCands(rng, n, rows)
		loA := make([]float64, n)
		hiA := make([]float64, n)
		loG := make([]float64, n)
		hiG := make([]float64, n)
		withAVX2(t, true, func() { AccCodeBounds(loA, hiA, codes, cands, &tLo, &tHi) })
		withAVX2(t, false, func() { AccCodeBounds(loG, hiG, codes, cands, &tLo, &tHi) })
		if i, ok := bitsEqual(loA, loG); !ok {
			t.Fatalf("AccCodeBounds n=%d: sLo[%d] differs", n, i)
		}
		if i, ok := bitsEqual(hiA, hiG); !ok {
			t.Fatalf("AccCodeBounds n=%d: sHi[%d] differs", n, i)
		}
	}
}

func TestVARowSumBitIdentical(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(13))
	for _, dims := range equivLens {
		tbl := make([]float64, dims*256)
		for i := range tbl {
			tbl[i] = rng.NormFloat64()
		}
		row := make([]uint8, dims)
		for i := range row {
			row[i] = uint8(rng.Intn(256))
		}
		var a, g float64
		withAVX2(t, true, func() { a = VARowSum(tbl, row) })
		withAVX2(t, false, func() { g = VARowSum(tbl, row) })
		if math.Float64bits(a) != math.Float64bits(g) {
			t.Fatalf("VARowSum dims=%d: avx2=%v go=%v", dims, a, g)
		}
	}
}

func TestDenseKernelsWithinTolerance(t *testing.T) {
	requireAVX2(t)
	rng := rand.New(rand.NewSource(17))
	const relTol = 1e-12
	for _, n := range equivLens {
		v := make([]float64, n)
		q := make([]float64, n)
		w := make([]float64, n)
		for i := range v {
			v[i] = rng.NormFloat64()
			q[i] = rng.NormFloat64()
			w[i] = rng.Float64()
		}
		check := func(name string, f func() float64) {
			var a, g float64
			withAVX2(t, true, func() { a = f() })
			withAVX2(t, false, func() { g = f() })
			scale := math.Max(math.Abs(g), 1)
			if math.Abs(a-g) > relTol*scale {
				t.Fatalf("%s n=%d: avx2=%v go=%v", name, n, a, g)
			}
		}
		check("SqDist", func() float64 { return SqDist(v, q) })
		check("MinSum", func() float64 { return MinSum(v, q) })
		check("WSqDist", func() float64 { return WSqDist(v, q, w) })
	}
}

// Zeros of mixed sign on both sides: a single vminpd would return the
// second operand on a (−0, +0) tie, which depends on operand order; the
// two-min/or sequence must pick −0 like the Go builtin regardless.
func TestMinZeroSignMatchesBuiltin(t *testing.T) {
	requireAVX2(t)
	negZero := math.Copysign(0, -1)
	h := []float64{0, negZero, 0, negZero, 1, -1, 0, negZero, 0, negZero, 2, -2}
	q := []float64{negZero, 0, 0, negZero, negZero, 0, 0, 0, negZero, negZero, 0, negZero}
	var a, g float64
	withAVX2(t, true, func() { a = MinSum(h, q) })
	withAVX2(t, false, func() { g = MinSum(h, q) })
	if math.Float64bits(a) != math.Float64bits(g) {
		t.Fatalf("MinSum zero-sign: avx2=%x go=%x", math.Float64bits(a), math.Float64bits(g))
	}

	cands := make([]int, len(h))
	for i := range cands {
		cands[i] = i
	}
	sA := make([]float64, len(h))
	sG := make([]float64, len(h))
	withAVX2(t, true, func() { AccMinQ(sA, h, cands, negZero) })
	withAVX2(t, false, func() { AccMinQ(sG, h, cands, negZero) })
	if i, ok := bitsEqual(sA, sG); !ok {
		t.Fatalf("AccMinQ -0 query: slot %d avx2=%x go=%x", i,
			math.Float64bits(sA[i]), math.Float64bits(sG[i]))
	}
}

// Package kernel provides the allocation-free inner loops of the search
// engine: distance and similarity accumulation over decomposed columns,
// 8-bit code-table lookups, and VA-File row sums.
//
// Every kernel is written for the Go compiler's strengths: a 4× unrolled
// main loop with a scalar tail, slice re-slicing up front so bounds checks
// hoist out of the loop body, and branch-free min selection via the
// intrinsified min builtin instead of a data-dependent branch that
// mispredicts ~50% of the time on random data. The gather kernels
// accumulate into per-candidate slots, so each slot receives exactly one
// addition per column in the same order as the scalar loops they replace —
// scores are bit-identical, which is what keeps every access path's answer
// byte-equal to the sequential-scan oracle. The dense kernels (whole-vector
// distances) use four independent accumulators for instruction-level
// parallelism; their sums can differ from a left-to-right fold in the last
// ulp, which is inside the tolerance every consumer already grants.
//
// None of the kernels allocate.
package kernel

// AccSqDist folds one column into partial squared-Euclidean scores:
// score[i] += (col[cands[i]] − qd)² for every candidate. len(score) must be
// at least len(cands).
func AccSqDist(score []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		c0, c1, c2, c3 := cands[i], cands[i+1], cands[i+2], cands[i+3]
		d0 := col[c0] - qd
		d1 := col[c1] - qd
		d2 := col[c2] - qd
		d3 := col[c3] - qd
		score[i] += d0 * d0
		score[i+1] += d1 * d1
		score[i+2] += d2 * d2
		score[i+3] += d3 * d3
	}
	for ; i < len(cands); i++ {
		d := col[cands[i]] - qd
		score[i] += d * d
	}
}

// AccSqDistTails is AccSqDist plus remaining-mass maintenance:
// tails[i] -= col[cands[i]]. len(score) and len(tails) must be at least
// len(cands).
func AccSqDistTails(score, tails []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		d0 := v0 - qd
		d1 := v1 - qd
		d2 := v2 - qd
		d3 := v3 - qd
		score[i] += d0 * d0
		score[i+1] += d1 * d1
		score[i+2] += d2 * d2
		score[i+3] += d3 * d3
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		d := v - qd
		score[i] += d * d
		tails[i] -= v
	}
}

// AccWSqDist is the weighted variant: score[i] += w·(col[cands[i]] − qd)².
func AccWSqDist(score []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		d0 := col[cands[i]] - qd
		d1 := col[cands[i+1]] - qd
		d2 := col[cands[i+2]] - qd
		d3 := col[cands[i+3]] - qd
		score[i] += w * d0 * d0
		score[i+1] += w * d1 * d1
		score[i+2] += w * d2 * d2
		score[i+3] += w * d3 * d3
	}
	for ; i < len(cands); i++ {
		d := col[cands[i]] - qd
		score[i] += w * d * d
	}
}

// AccWSqDistTails is AccWSqDist plus remaining-mass maintenance.
func AccWSqDistTails(score, tails []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		d0 := v0 - qd
		d1 := v1 - qd
		d2 := v2 - qd
		d3 := v3 - qd
		score[i] += w * d0 * d0
		score[i+1] += w * d1 * d1
		score[i+2] += w * d2 * d2
		score[i+3] += w * d3 * d3
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		d := v - qd
		score[i] += w * d * d
		tails[i] -= v
	}
}

// AccMinQ folds one column into partial histogram-intersection scores:
// score[i] += min(col[cands[i]], qd). The min builtin is intrinsified, so
// on random data this replaces a mispredicting branch.
func AccMinQ(score []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		score[i] += min(col[cands[i]], qd)
		score[i+1] += min(col[cands[i+1]], qd)
		score[i+2] += min(col[cands[i+2]], qd)
		score[i+3] += min(col[cands[i+3]], qd)
	}
	for ; i < len(cands); i++ {
		score[i] += min(col[cands[i]], qd)
	}
}

// AccMinQTails is AccMinQ plus remaining-mass maintenance.
func AccMinQTails(score, tails []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		score[i] += min(v0, qd)
		score[i+1] += min(v1, qd)
		score[i+2] += min(v2, qd)
		score[i+3] += min(v3, qd)
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		score[i] += min(v, qd)
		tails[i] -= v
	}
}

// AccWMinQ is the weighted histogram variant: score[i] += w·min(v, qd).
func AccWMinQ(score []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		score[i] += w * min(col[cands[i]], qd)
		score[i+1] += w * min(col[cands[i+1]], qd)
		score[i+2] += w * min(col[cands[i+2]], qd)
		score[i+3] += w * min(col[cands[i+3]], qd)
	}
	for ; i < len(cands); i++ {
		score[i] += w * min(col[cands[i]], qd)
	}
}

// AccCodeBounds folds one 8-bit code column into the score intervals of a
// compressed filter: per candidate, two table loads and two adds. The 256-
// entry tables live in L1 for the whole column. len(sLo) and len(sHi) must
// be at least len(cands).
func AccCodeBounds(sLo, sHi []float64, codes []uint8, cands []int, tLo, tHi *[256]float64) {
	sLo = sLo[:len(cands)]
	sHi = sHi[:len(cands)]
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		c0, c1, c2, c3 := codes[cands[i]], codes[cands[i+1]], codes[cands[i+2]], codes[cands[i+3]]
		sLo[i] += tLo[c0]
		sLo[i+1] += tLo[c1]
		sLo[i+2] += tLo[c2]
		sLo[i+3] += tLo[c3]
		sHi[i] += tHi[c0]
		sHi[i+1] += tHi[c1]
		sHi[i+2] += tHi[c2]
		sHi[i+3] += tHi[c3]
	}
	for ; i < len(cands); i++ {
		c := codes[cands[i]]
		sLo[i] += tLo[c]
		sHi[i] += tHi[c]
	}
}

// VARowSum sums a VA-File bound table over one row-major code row:
// Σ_d tbl[d·256 + row[d]]. tbl must hold len(row)·256 entries (it panics
// otherwise); four independent accumulators hide the load latency.
func VARowSum(tbl []float64, row []uint8) float64 {
	if len(tbl) < len(row)*256 {
		panic("kernel: VA bound table shorter than 256 entries per dimension")
	}
	var s0, s1, s2, s3 float64
	d := 0
	for ; d+4 <= len(row); d += 4 {
		s0 += tbl[d*256+int(row[d])]
		s1 += tbl[(d+1)*256+int(row[d+1])]
		s2 += tbl[(d+2)*256+int(row[d+2])]
		s3 += tbl[(d+3)*256+int(row[d+3])]
	}
	for ; d < len(row); d++ {
		s0 += tbl[d*256+int(row[d])]
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDist returns the dense squared Euclidean distance Σ (v_i − q_i)² with
// four independent accumulators. len(q) must be at least len(v).
func SqDist(v, q []float64) float64 {
	q = q[:len(v)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		d0 := v[i] - q[i]
		d1 := v[i+1] - q[i+1]
		d2 := v[i+2] - q[i+2]
		d3 := v[i+3] - q[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(v); i++ {
		d := v[i] - q[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// MinSum returns the dense histogram intersection Σ min(h_i, q_i), branch-
// free. len(q) must be at least len(h).
func MinSum(h, q []float64) float64 {
	q = q[:len(h)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(h); i += 4 {
		s0 += min(h[i], q[i])
		s1 += min(h[i+1], q[i+1])
		s2 += min(h[i+2], q[i+2])
		s3 += min(h[i+3], q[i+3])
	}
	for ; i < len(h); i++ {
		s0 += min(h[i], q[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// WSqDist returns the dense weighted squared Euclidean distance
// Σ w_i (v_i − q_i)². len(q) and len(w) must be at least len(v).
func WSqDist(v, q, w []float64) float64 {
	q = q[:len(v)]
	w = w[:len(v)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(v); i += 4 {
		d0 := v[i] - q[i]
		d1 := v[i+1] - q[i+1]
		d2 := v[i+2] - q[i+2]
		d3 := v[i+3] - q[i+3]
		s0 += w[i] * d0 * d0
		s1 += w[i+1] * d1 * d1
		s2 += w[i+2] * d2 * d2
		s3 += w[i+3] * d3 * d3
	}
	for ; i < len(v); i++ {
		d := v[i] - q[i]
		s0 += w[i] * d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Sum returns Σ x_i with four independent accumulators.
func Sum(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Package kernel provides the allocation-free inner loops of the search
// engine: distance and similarity accumulation over decomposed columns,
// 8-bit code-table lookups, and VA-File row sums.
//
// Each kernel has two implementations. The portable one is written for
// the Go compiler's strengths: a 4× unrolled main loop with a scalar
// tail, slice re-slicing up front so bounds checks hoist out of the loop
// body, and branch-free min selection via the intrinsified min builtin
// instead of a data-dependent branch that mispredicts ~50% of the time on
// random data. On amd64 an AVX2 variant (hand-written assembly, selected
// once at init by CPUID feature detection) replaces the main loop; the
// `purego` build tag forces the portable bodies everywhere, and every
// exported function dispatches so callers never know which ran.
//
// The gather kernels accumulate into per-candidate slots, so each slot
// receives exactly one addition per column in the same order as the
// scalar loops they replace — scores are bit-identical whichever
// implementation runs, which is what keeps every access path's answer
// byte-equal to the sequential-scan oracle. Their AVX2 variants therefore
// use plain vsubpd/vmulpd/vaddpd, never FMA: a fused multiply-add rounds
// once where the scalar code rounds twice, and that last-bit difference
// would break the oracle equality. The dense kernels (whole-vector
// distances) instead use independent accumulators for instruction-level
// parallelism — four scalar ones in the portable code, four 4-wide vector
// ones in the AVX2 code — so their sums may differ from a left-to-right
// fold (and between implementations) in the last few ulps, which is
// inside the tolerance every consumer already grants.
//
// None of the kernels allocate.
package kernel

// simdMin is the slice length below which the exported wrappers skip the
// AVX2 variants: under two vector iterations of work, the dispatch and
// vzeroupper overhead costs more than the vectors save.
const simdMin = 8

// SIMD reports which vector instruction set the kernels dispatch to:
// "avx2", or "none" for the portable Go bodies (non-amd64 platforms, the
// purego build tag, or CPUs without AVX2).
func SIMD() string {
	if hasAVX2 {
		return "avx2"
	}
	return "none"
}

// AccSqDist folds one column into partial squared-Euclidean scores:
// score[i] += (col[cands[i]] − qd)² for every candidate. len(score) must be
// at least len(cands).
func AccSqDist(score []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accSqDistAVX2(&score[0], &col[0], &cands[0], n, qd)
		for i := n; i < len(cands); i++ {
			d := col[cands[i]] - qd
			score[i] += d * d
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		c0, c1, c2, c3 := cands[i], cands[i+1], cands[i+2], cands[i+3]
		d0 := col[c0] - qd
		d1 := col[c1] - qd
		d2 := col[c2] - qd
		d3 := col[c3] - qd
		score[i] += d0 * d0
		score[i+1] += d1 * d1
		score[i+2] += d2 * d2
		score[i+3] += d3 * d3
	}
	for ; i < len(cands); i++ {
		d := col[cands[i]] - qd
		score[i] += d * d
	}
}

// AccSqDistTails is AccSqDist plus remaining-mass maintenance:
// tails[i] -= col[cands[i]]. len(score) and len(tails) must be at least
// len(cands).
func AccSqDistTails(score, tails []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accSqDistTailsAVX2(&score[0], &tails[0], &col[0], &cands[0], n, qd)
		for i := n; i < len(cands); i++ {
			v := col[cands[i]]
			d := v - qd
			score[i] += d * d
			tails[i] -= v
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		d0 := v0 - qd
		d1 := v1 - qd
		d2 := v2 - qd
		d3 := v3 - qd
		score[i] += d0 * d0
		score[i+1] += d1 * d1
		score[i+2] += d2 * d2
		score[i+3] += d3 * d3
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		d := v - qd
		score[i] += d * d
		tails[i] -= v
	}
}

// AccWSqDist is the weighted variant: score[i] += w·(col[cands[i]] − qd)².
// The product associates as (w·d)·d, matching the scalar loop exactly.
func AccWSqDist(score []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accWSqDistAVX2(&score[0], &col[0], &cands[0], n, qd, w)
		for i := n; i < len(cands); i++ {
			d := col[cands[i]] - qd
			score[i] += w * d * d
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		d0 := col[cands[i]] - qd
		d1 := col[cands[i+1]] - qd
		d2 := col[cands[i+2]] - qd
		d3 := col[cands[i+3]] - qd
		score[i] += w * d0 * d0
		score[i+1] += w * d1 * d1
		score[i+2] += w * d2 * d2
		score[i+3] += w * d3 * d3
	}
	for ; i < len(cands); i++ {
		d := col[cands[i]] - qd
		score[i] += w * d * d
	}
}

// AccWSqDistTails is AccWSqDist plus remaining-mass maintenance.
func AccWSqDistTails(score, tails []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accWSqDistTailsAVX2(&score[0], &tails[0], &col[0], &cands[0], n, qd, w)
		for i := n; i < len(cands); i++ {
			v := col[cands[i]]
			d := v - qd
			score[i] += w * d * d
			tails[i] -= v
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		d0 := v0 - qd
		d1 := v1 - qd
		d2 := v2 - qd
		d3 := v3 - qd
		score[i] += w * d0 * d0
		score[i+1] += w * d1 * d1
		score[i+2] += w * d2 * d2
		score[i+3] += w * d3 * d3
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		d := v - qd
		score[i] += w * d * d
		tails[i] -= v
	}
}

// AccMinQ folds one column into partial histogram-intersection scores:
// score[i] += min(col[cands[i]], qd). The min builtin is intrinsified, so
// on random data this replaces a mispredicting branch; the AVX2 variant
// reproduces the builtin's −0 < +0 ordering with a two-vminpd/vorpd
// sequence (a single vminpd is not symmetric in its zero handling).
func AccMinQ(score []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accMinQAVX2(&score[0], &col[0], &cands[0], n, qd)
		for i := n; i < len(cands); i++ {
			score[i] += min(col[cands[i]], qd)
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		score[i] += min(col[cands[i]], qd)
		score[i+1] += min(col[cands[i+1]], qd)
		score[i+2] += min(col[cands[i+2]], qd)
		score[i+3] += min(col[cands[i+3]], qd)
	}
	for ; i < len(cands); i++ {
		score[i] += min(col[cands[i]], qd)
	}
}

// AccMinQTails is AccMinQ plus remaining-mass maintenance.
func AccMinQTails(score, tails []float64, col []float64, cands []int, qd float64) {
	score = score[:len(cands)]
	tails = tails[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accMinQTailsAVX2(&score[0], &tails[0], &col[0], &cands[0], n, qd)
		for i := n; i < len(cands); i++ {
			v := col[cands[i]]
			score[i] += min(v, qd)
			tails[i] -= v
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		v0, v1, v2, v3 := col[cands[i]], col[cands[i+1]], col[cands[i+2]], col[cands[i+3]]
		score[i] += min(v0, qd)
		score[i+1] += min(v1, qd)
		score[i+2] += min(v2, qd)
		score[i+3] += min(v3, qd)
		tails[i] -= v0
		tails[i+1] -= v1
		tails[i+2] -= v2
		tails[i+3] -= v3
	}
	for ; i < len(cands); i++ {
		v := col[cands[i]]
		score[i] += min(v, qd)
		tails[i] -= v
	}
}

// AccWMinQ is the weighted histogram variant: score[i] += w·min(v, qd).
func AccWMinQ(score []float64, col []float64, cands []int, qd, w float64) {
	score = score[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accWMinQAVX2(&score[0], &col[0], &cands[0], n, qd, w)
		for i := n; i < len(cands); i++ {
			score[i] += w * min(col[cands[i]], qd)
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		score[i] += w * min(col[cands[i]], qd)
		score[i+1] += w * min(col[cands[i+1]], qd)
		score[i+2] += w * min(col[cands[i+2]], qd)
		score[i+3] += w * min(col[cands[i+3]], qd)
	}
	for ; i < len(cands); i++ {
		score[i] += w * min(col[cands[i]], qd)
	}
}

// AccCodeBounds folds one 8-bit code column into the score intervals of a
// compressed filter: per candidate, two table loads and two adds. The 256-
// entry tables live in L1 for the whole column. len(sLo) and len(sHi) must
// be at least len(cands).
func AccCodeBounds(sLo, sHi []float64, codes []uint8, cands []int, tLo, tHi *[256]float64) {
	sLo = sLo[:len(cands)]
	sHi = sHi[:len(cands)]
	if hasAVX2 && len(cands) >= simdMin {
		n := len(cands) &^ 3
		accCodeBoundsAVX2(&sLo[0], &sHi[0], &codes[0], &cands[0], n, tLo, tHi)
		for i := n; i < len(cands); i++ {
			c := codes[cands[i]]
			sLo[i] += tLo[c]
			sHi[i] += tHi[c]
		}
		return
	}
	i := 0
	for ; i+4 <= len(cands); i += 4 {
		c0, c1, c2, c3 := codes[cands[i]], codes[cands[i+1]], codes[cands[i+2]], codes[cands[i+3]]
		sLo[i] += tLo[c0]
		sLo[i+1] += tLo[c1]
		sLo[i+2] += tLo[c2]
		sLo[i+3] += tLo[c3]
		sHi[i] += tHi[c0]
		sHi[i+1] += tHi[c1]
		sHi[i+2] += tHi[c2]
		sHi[i+3] += tHi[c3]
	}
	for ; i < len(cands); i++ {
		c := codes[cands[i]]
		sLo[i] += tLo[c]
		sHi[i] += tHi[c]
	}
}

// VARowSum sums a VA-File bound table over one row-major code row:
// Σ_d tbl[d·256 + row[d]]. tbl must hold len(row)·256 entries (it panics
// otherwise); four independent accumulators hide the load latency. The
// AVX2 variant keeps accumulator j on exactly the dimensions 4k+j the
// scalar s_j sees, so the result is bit-identical.
func VARowSum(tbl []float64, row []uint8) float64 {
	if len(tbl) < len(row)*256 {
		panic("kernel: VA bound table shorter than 256 entries per dimension")
	}
	var s0, s1, s2, s3 float64
	d := 0
	if hasAVX2 && len(row) >= simdMin {
		n := len(row) &^ 3
		var part [4]float64
		vaRowSumAVX2(&tbl[0], &row[0], n, &part)
		s0, s1, s2, s3 = part[0], part[1], part[2], part[3]
		d = n
	} else {
		for ; d+4 <= len(row); d += 4 {
			s0 += tbl[d*256+int(row[d])]
			s1 += tbl[(d+1)*256+int(row[d+1])]
			s2 += tbl[(d+2)*256+int(row[d+2])]
			s3 += tbl[(d+3)*256+int(row[d+3])]
		}
	}
	for ; d < len(row); d++ {
		s0 += tbl[d*256+int(row[d])]
	}
	return (s0 + s1) + (s2 + s3)
}

// SqDist returns the dense squared Euclidean distance Σ (v_i − q_i)² with
// independent accumulators; see the package comment for the few-ulp
// tolerance this implies. len(q) must be at least len(v).
func SqDist(v, q []float64) float64 {
	q = q[:len(v)]
	var s0, s1, s2, s3 float64
	i := 0
	if hasAVX2 && len(v) >= simdMin {
		n := len(v) &^ 3
		var part [4]float64
		sqDistAVX2(&v[0], &q[0], n, &part)
		s0, s1, s2, s3 = part[0], part[1], part[2], part[3]
		i = n
	} else {
		for ; i+4 <= len(v); i += 4 {
			d0 := v[i] - q[i]
			d1 := v[i+1] - q[i+1]
			d2 := v[i+2] - q[i+2]
			d3 := v[i+3] - q[i+3]
			s0 += d0 * d0
			s1 += d1 * d1
			s2 += d2 * d2
			s3 += d3 * d3
		}
	}
	for ; i < len(v); i++ {
		d := v[i] - q[i]
		s0 += d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// MinSum returns the dense histogram intersection Σ min(h_i, q_i), branch-
// free, with independent accumulators (few-ulp tolerance). len(q) must be
// at least len(h).
func MinSum(h, q []float64) float64 {
	q = q[:len(h)]
	var s0, s1, s2, s3 float64
	i := 0
	if hasAVX2 && len(h) >= simdMin {
		n := len(h) &^ 3
		var part [4]float64
		minSumAVX2(&h[0], &q[0], n, &part)
		s0, s1, s2, s3 = part[0], part[1], part[2], part[3]
		i = n
	} else {
		for ; i+4 <= len(h); i += 4 {
			s0 += min(h[i], q[i])
			s1 += min(h[i+1], q[i+1])
			s2 += min(h[i+2], q[i+2])
			s3 += min(h[i+3], q[i+3])
		}
	}
	for ; i < len(h); i++ {
		s0 += min(h[i], q[i])
	}
	return (s0 + s1) + (s2 + s3)
}

// WSqDist returns the dense weighted squared Euclidean distance
// Σ w_i (v_i − q_i)² with independent accumulators (few-ulp tolerance).
// len(q) and len(w) must be at least len(v).
func WSqDist(v, q, w []float64) float64 {
	q = q[:len(v)]
	w = w[:len(v)]
	var s0, s1, s2, s3 float64
	i := 0
	if hasAVX2 && len(v) >= simdMin {
		n := len(v) &^ 3
		var part [4]float64
		wSqDistAVX2(&v[0], &q[0], &w[0], n, &part)
		s0, s1, s2, s3 = part[0], part[1], part[2], part[3]
		i = n
	} else {
		for ; i+4 <= len(v); i += 4 {
			d0 := v[i] - q[i]
			d1 := v[i+1] - q[i+1]
			d2 := v[i+2] - q[i+2]
			d3 := v[i+3] - q[i+3]
			s0 += w[i] * d0 * d0
			s1 += w[i+1] * d1 * d1
			s2 += w[i+2] * d2 * d2
			s3 += w[i+3] * d3 * d3
		}
	}
	for ; i < len(v); i++ {
		d := v[i] - q[i]
		s0 += w[i] * d * d
	}
	return (s0 + s1) + (s2 + s3)
}

// Sum returns Σ x_i with four independent accumulators. It stays pure Go
// on every platform: one vector accumulator would replicate the scalar
// chains bit-for-bit but gains nothing (one add per four elements either
// way, bound by the same add latency), and more would change the result.
func Sum(x []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		s0 += x[i]
		s1 += x[i+1]
		s2 += x[i+2]
		s3 += x[i+3]
	}
	for ; i < len(x); i++ {
		s0 += x[i]
	}
	return (s0 + s1) + (s2 + s3)
}

package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// The gather kernels must be bit-identical to the scalar loops they
// replaced: each slot receives one addition per column in the same order.
// The dense kernels may differ in the last ulp (independent accumulators),
// so they are checked against a tight relative tolerance.

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.Float64()
	}
	return s
}

func randCands(rng *rand.Rand, n, max int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = rng.Intn(max)
	}
	return c
}

func TestGatherKernelsBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 1000} {
		col := randSlice(rng, 2048)
		cands := randCands(rng, n, len(col))
		qd := rng.Float64()
		w := rng.Float64() + 0.1

		base := randSlice(rng, n)
		tailsBase := randSlice(rng, n)

		check := func(name string, kernel func(score, tails []float64), scalar func(score, tails []float64)) {
			t.Helper()
			ks, kt := append([]float64(nil), base...), append([]float64(nil), tailsBase...)
			ss, st := append([]float64(nil), base...), append([]float64(nil), tailsBase...)
			kernel(ks, kt)
			scalar(ss, st)
			for i := range ks {
				if ks[i] != ss[i] || kt[i] != st[i] {
					t.Fatalf("%s n=%d slot %d: kernel (%v, %v) != scalar (%v, %v)",
						name, n, i, ks[i], kt[i], ss[i], st[i])
				}
			}
		}

		check("AccSqDist",
			func(score, _ []float64) { AccSqDist(score, col, cands, qd) },
			func(score, _ []float64) {
				for i, id := range cands {
					d := col[id] - qd
					score[i] += d * d
				}
			})
		check("AccSqDistTails",
			func(score, tails []float64) { AccSqDistTails(score, tails, col, cands, qd) },
			func(score, tails []float64) {
				for i, id := range cands {
					v := col[id]
					d := v - qd
					score[i] += d * d
					tails[i] -= v
				}
			})
		check("AccWSqDist",
			func(score, _ []float64) { AccWSqDist(score, col, cands, qd, w) },
			func(score, _ []float64) {
				for i, id := range cands {
					d := col[id] - qd
					score[i] += w * d * d
				}
			})
		check("AccWSqDistTails",
			func(score, tails []float64) { AccWSqDistTails(score, tails, col, cands, qd, w) },
			func(score, tails []float64) {
				for i, id := range cands {
					v := col[id]
					d := v - qd
					score[i] += w * d * d
					tails[i] -= v
				}
			})
		check("AccMinQ",
			func(score, _ []float64) { AccMinQ(score, col, cands, qd) },
			func(score, _ []float64) {
				for i, id := range cands {
					score[i] += math.Min(col[id], qd)
				}
			})
		check("AccMinQTails",
			func(score, tails []float64) { AccMinQTails(score, tails, col, cands, qd) },
			func(score, tails []float64) {
				for i, id := range cands {
					v := col[id]
					score[i] += math.Min(v, qd)
					tails[i] -= v
				}
			})
		check("AccWMinQ",
			func(score, _ []float64) { AccWMinQ(score, col, cands, qd, w) },
			func(score, _ []float64) {
				for i, id := range cands {
					score[i] += w * math.Min(col[id], qd)
				}
			})
	}
}

func TestAccCodeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var tLo, tHi [256]float64
	for c := range tLo {
		tLo[c] = rng.Float64()
		tHi[c] = tLo[c] + rng.Float64()
	}
	for _, n := range []int{0, 1, 3, 4, 5, 100} {
		codes := make([]uint8, 512)
		for i := range codes {
			codes[i] = uint8(rng.Intn(256))
		}
		cands := randCands(rng, n, len(codes))
		kLo, kHi := randSlice(rng, n), randSlice(rng, n)
		sLo := append([]float64(nil), kLo...)
		sHi := append([]float64(nil), kHi...)
		AccCodeBounds(kLo, kHi, codes, cands, &tLo, &tHi)
		for i, id := range cands {
			sLo[i] += tLo[codes[id]]
			sHi[i] += tHi[codes[id]]
		}
		for i := range kLo {
			if kLo[i] != sLo[i] || kHi[i] != sHi[i] {
				t.Fatalf("n=%d slot %d mismatch", n, i)
			}
		}
	}
}

func relClose(a, b float64) bool {
	d := math.Abs(a - b)
	return d <= 1e-12*(1+math.Abs(a)+math.Abs(b))
}

func TestDenseKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, n := range []int{0, 1, 2, 4, 5, 31, 32, 33, 166} {
		v, q, w := randSlice(rng, n), randSlice(rng, n), randSlice(rng, n)

		var sq, ms, ws, sum float64
		for i := range v {
			d := v[i] - q[i]
			sq += d * d
			ms += math.Min(v[i], q[i])
			ws += w[i] * d * d
			sum += v[i]
		}
		if got := SqDist(v, q); !relClose(got, sq) {
			t.Fatalf("SqDist n=%d: %v want %v", n, got, sq)
		}
		if got := MinSum(v, q); !relClose(got, ms) {
			t.Fatalf("MinSum n=%d: %v want %v", n, got, ms)
		}
		if got := WSqDist(v, q, w); !relClose(got, ws) {
			t.Fatalf("WSqDist n=%d: %v want %v", n, got, ws)
		}
		if got := Sum(v); !relClose(got, sum) {
			t.Fatalf("Sum n=%d: %v want %v", n, got, sum)
		}
	}
}

func TestVARowSum(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, dims := range []int{1, 2, 3, 4, 5, 8, 31, 32, 64} {
		tbl := randSlice(rng, dims*256)
		row := make([]uint8, dims)
		for d := range row {
			row[d] = uint8(rng.Intn(256))
		}
		var want float64
		for d, c := range row {
			want += tbl[d*256+int(c)]
		}
		if got := VARowSum(tbl, row); !relClose(got, want) {
			t.Fatalf("dims=%d: %v want %v", dims, got, want)
		}
	}
}

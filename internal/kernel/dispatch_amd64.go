//go:build amd64 && !purego

package kernel

// hasAVX2 is decided once at init: the exported kernels dispatch on it to
// the assembly in kernel_amd64.s. Detection follows the architectural
// checklist — AVX2 alone is not enough, the OS must have enabled saving
// the ymm state (OSXSAVE + XCR0 bits 1 and 2), or the registers are
// silently truncated on context switch.
var hasAVX2 = detectAVX2()

// cpuid and xgetbv0 are implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)

func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE state) and 2 (AVX state) must both be set by the
	// operating system before ymm registers survive a context switch.
	xcr0, _ := xgetbv0()
	if xcr0&6 != 6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const avx2Bit = 1 << 5
	return ebx7&avx2Bit != 0
}

// The assembly kernels. Every slice has been length-checked by the
// wrapper; n is the number of slots to process and is a multiple of 4
// (the wrapper runs the remainder in scalar Go). The Acc* gather kernels
// preserve the scalar loops' one-addition-per-slot-per-column order and
// are bit-identical to them; the dense kernels return four lane partials
// for the wrapper to reduce like its scalar accumulators.

//go:noescape
func accSqDistAVX2(score, col *float64, cands *int, n int, qd float64)

//go:noescape
func accSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64)

//go:noescape
func accWSqDistAVX2(score, col *float64, cands *int, n int, qd, w float64)

//go:noescape
func accWSqDistTailsAVX2(score, tails, col *float64, cands *int, n int, qd, w float64)

//go:noescape
func accMinQAVX2(score, col *float64, cands *int, n int, qd float64)

//go:noescape
func accMinQTailsAVX2(score, tails, col *float64, cands *int, n int, qd float64)

//go:noescape
func accWMinQAVX2(score, col *float64, cands *int, n int, qd, w float64)

//go:noescape
func accCodeBoundsAVX2(sLo, sHi *float64, codes *uint8, cands *int, n int, tLo, tHi *[256]float64)

//go:noescape
func vaRowSumAVX2(tbl *float64, row *uint8, n int, out *[4]float64)

//go:noescape
func sqDistAVX2(v, q *float64, n int, out *[4]float64)

//go:noescape
func minSumAVX2(h, q *float64, n int, out *[4]float64)

//go:noescape
func wSqDistAVX2(v, q, w *float64, n int, out *[4]float64)

package plan

import (
	"fmt"
	"strings"

	"bond/internal/multifeature"
)

// Explain renders the plan as the EXPLAIN output the CLI prints: the
// query shape, the model coefficients the predictions came from, one line
// per planned segment with the chosen access path and predicted versus
// actual cost (in coefficient-equivalents, 8-bit cells charged at 1/8),
// and a summary. Before Execute the actual columns read "-"; after, they
// carry the measured costs, so predicted-vs-actual drift is visible at a
// glance.
func (p *Plan) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Query: k=%d criterion=%s strategy=%s segments=%d (%d slots × %d dims)\n",
		p.Opts.K, p.Opts.Criterion, p.Spec.Strategy, len(p.Steps), p.Slots, p.Dims)
	fmt.Fprintf(&b, "Model: bond=%.3f compr.filter=%.3f compr.survive=%.3f va.survive=%.3f queries=%d\n",
		p.Model.BondFrac, p.Model.ComprFilterFrac, p.Model.ComprSurvive, p.Model.VASurvive, p.Model.Queries)
	fmt.Fprintf(&b, "Cost:  ns/cell bond=%.2f compressed=%.2f vafile=%.2f exact=%.2f\n",
		p.Model.BondNs, p.Model.ComprNs, p.Model.VANs, p.Model.ExactNs)
	for i := range p.Steps {
		if p.Steps[i].mapped {
			fmt.Fprintf(&b, "       mapped  bond=%.2f compressed=%.2f vafile=%.2f exact=%.2f\n",
				p.Model.BondNsMapped, p.Model.ComprNsMapped, p.Model.VANsMapped, p.Model.ExactNsMapped)
			break
		}
	}
	fmt.Fprintf(&b, "%4s  %-10s %8s %6s %12s %12s %12s %10s\n",
		"seg", "path", "n", "par", "bound", "predicted", "actual", "candidates")
	for i := range p.Steps {
		st := &p.Steps[i]
		bound := "-"
		if st.HasBound {
			bound = fmt.Sprintf("%.4f", st.Bound)
		}
		par := ""
		if st.Parallel {
			par = "yes"
		}
		actual := "-"
		cands := "-"
		switch {
		case st.Skipped:
			actual = "skipped"
			cands = "0"
		case st.Executed:
			actual = fmt.Sprintf("%.1f", st.ActualCost)
			cands = fmt.Sprintf("%d", st.Candidates)
		}
		fmt.Fprintf(&b, "%4d  %-10s %8d %6s %12s %12.1f %12s %10s\n",
			st.Segment, st.Path, st.N, par, bound, st.PredCost, actual, cands)
	}
	searched, skipped := 0, 0
	for i := range p.Steps {
		if p.Steps[i].Skipped {
			skipped++
		} else if p.Steps[i].Executed {
			searched++
		}
	}
	fmt.Fprintf(&b, "Total: predicted=%.1f actual=%.1f searched=%d skipped=%d",
		p.PredictedCost(), p.ActualCost(), searched, skipped)
	if p.Truncated {
		b.WriteString(" (truncated: deadline)")
	}
	b.WriteString("\n")
	return b.String()
}

// Multi routes a multi-feature query through the plan layer. Synchronized
// multi-feature BOND advances every feature in lockstep across all their
// segments, so there is no per-segment path choice to make; the planner's
// contribution is validation and a uniform entry point.
func Multi(features []multifeature.Feature, opts multifeature.Options) (multifeature.Result, error) {
	return multifeature.Search(features, opts)
}

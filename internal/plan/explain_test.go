package plan

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"bond/internal/core"
	"bond/internal/vstore"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// TestExplainGolden pins the EXPLAIN output — chosen per-segment paths,
// predictions, actual costs, and skips — for three segment layouts:
// cluster-contiguous (synopsis skipping dominates), uniform (no skipping;
// the filter paths win on cost), and skewed (BOND prunes fast). The data
// is generated from fixed seeds and the model starts at the priors, so
// the output is fully deterministic. Regenerate with: go test -run
// TestExplainGolden -update ./internal/plan/
func TestExplainGolden(t *testing.T) {
	cases := []struct {
		name  string
		spec  Spec
		store *vstore.SegStore
	}{
		{
			name:  "cluster_contiguous_hq",
			store: clusterContiguous(5, 100, 16, 11),
			spec:  Spec{K: 5, Criterion: core.Hq},
		},
		{
			name:  "uniform_eq",
			store: uniformStore(500, 100, 16, 12),
			spec:  Spec{K: 5, Criterion: core.Eq},
		},
		{
			name:  "skewed_hq",
			store: skewedStore(500, 100, 16, 13),
			spec:  Spec{K: 5, Criterion: core.Hq},
		},
		{
			// Mixed plan: the query's home segment has no synopsis help
			// (bound 0) and takes the compressed filter; far clusters
			// predict cheap BOND via the shape factor.
			name:  "cluster_contiguous_eq_mixed",
			store: clusterContiguous(5, 100, 32, 14),
			spec:  Spec{K: 5, Criterion: core.Eq},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.spec.Query = tc.store.Row(0)
			p, err := New(segmentsOf(tc.store), tc.spec, NewModel())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Execute(p); err != nil {
				t.Fatal(err)
			}
			got := p.Explain()
			path := filepath.Join("testdata", tc.name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to generate)", err)
			}
			if got != string(want) {
				t.Errorf("EXPLAIN drifted from golden %s.\ngot:\n%s\nwant:\n%s", tc.name, got, want)
			}
		})
	}
}

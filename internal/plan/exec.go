package plan

import (
	"fmt"
	"sync"
	"time"

	"bond/internal/core"
	"bond/internal/topk"
	"bond/internal/vafile"
)

// Result is a completed planned query. Results and Stats are the merged
// exact answer and work statistics; Compressed carries the
// filter-and-refine counters the legacy compressed entry point reports
// (populated whenever compressed, VA-File, or exact-scan steps ran).
type Result struct {
	Results []topk.Result
	Stats   core.Stats
	// Compressed aggregates the filter-and-refine counters; its Results
	// field mirrors Results so it is a complete core.CompressedResult.
	Compressed core.CompressedResult
	// Truncated reports that the deadline stopped execution before every
	// planned segment ran; the answer covers the segments searched.
	Truncated bool
}

// stepOutcome is what one executed step produced, before folding.
type stepOutcome struct {
	rs    []topk.Result // rebased to global ids
	empty bool
	err   error

	bondStats    core.Stats            // PathBOND, PathMIL
	comp         core.CompressedResult // PathCompressed
	exactScanned int64                 // PathExact
	vaCodes      int64                 // PathVAFile
	vaCands      int
	vaRefine     int64
}

// Execute runs the plan and merges the per-segment answers into the exact
// global top-k, feeding observed costs back into the plan's model. The
// parallel fan-out group runs first (concurrently); the sequential tail
// then runs best-bound-first with synopsis skipping against the running
// κ, exactly as the legacy segmented search did, so forced-strategy plans
// return byte-identical results and statistics.
func Execute(p *Plan) (Result, error) {
	// Once execution finishes, drop the segment handles and the per-query
	// bound table: Explain only needs Steps and the model snapshot, and a
	// caller holding the plan (e.g. to log it later) must not pin the
	// segments' columns and cached code arrays past compaction.
	defer func() {
		p.segs = nil
		p.vaTbl = nil
	}()
	opts := p.Opts
	dist := opts.Criterion.Distance()
	var kappaHeap *topk.Heap
	if dist {
		kappaHeap = topk.NewSmallest(opts.K)
	} else {
		kappaHeap = topk.NewLargest(opts.K)
	}

	var res Result
	var lists [][]topk.Result
	executed := false

	fold := func(st *Step, out stepOutcome, elapsed time.Duration) {
		st.Executed = true
		executed = true
		p.feedback(st, out, elapsed)
		switch st.Path {
		case PathBOND, PathMIL:
			res.Stats.SegmentsSearched++
			core.MergeStats(&res.Stats, out.bondStats, st.Segment)
		case PathCompressed:
			res.Stats.SegmentsSearched++
			core.MergeStats(&res.Stats, out.comp.FilterStats, st.Segment)
			res.Stats.ValuesScanned += out.comp.RefineValuesScanned
			res.Compressed.FilterCandidates += out.comp.FilterCandidates
			core.MergeStats(&res.Compressed.FilterStats, out.comp.FilterStats, st.Segment)
			res.Compressed.RefineValuesScanned += out.comp.RefineValuesScanned
			res.Compressed.FilterStats.SegmentsSearched++
		case PathExact:
			res.Stats.SegmentsSearched++
			res.Stats.ValuesScanned += out.exactScanned
			res.Compressed.ExactValuesScanned += out.exactScanned
			res.Compressed.FilterStats.SegmentsSearched++
		case PathVAFile:
			res.Stats.SegmentsSearched++
			res.Stats.ValuesScanned += out.vaCodes + out.vaRefine
			res.Compressed.FilterCandidates += out.vaCands
			res.Compressed.FilterStats.ValuesScanned += out.vaCodes
			res.Compressed.RefineValuesScanned += out.vaRefine
			res.Compressed.FilterStats.SegmentsSearched++
		}
		lists = append(lists, out.rs)
		for _, r := range out.rs {
			kappaHeap.Push(r.ID, r.Score)
		}
	}

	// Phase 1: the parallel fan-out group (no skipping — all its segments
	// start before any κ exists — but its answers seed κ for phase 2).
	npar := 0
	for npar < len(p.Steps) && p.Steps[npar].Parallel {
		npar++
	}
	switch {
	case npar > 0 && p.pastDeadline():
		p.Truncated = true
	case npar > 0:
		outs := make([]stepOutcome, npar)
		var wg sync.WaitGroup
		for i := 0; i < npar; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outs[i] = p.runStep(&p.Steps[i])
			}(i)
		}
		wg.Wait()
		for i := 0; i < npar; i++ {
			if outs[i].err != nil {
				return Result{}, fmt.Errorf("core: segment %d: %w", p.Steps[i].Segment, outs[i].err)
			}
			if outs[i].empty {
				continue
			}
			// Elapsed 0: per-goroutine wall time under fan-out contention
			// would systematically inflate the learned ns/cell, so
			// parallel steps feed back cell counts only.
			fold(&p.Steps[i], outs[i], 0)
		}
	}

	// Phase 2: the sequential tail, best-bound-first with skipping.
	for i := npar; i < len(p.Steps); i++ {
		st := &p.Steps[i]
		if p.pastDeadline() {
			p.Truncated = true
			break
		}
		if kappa, full := kappaHeap.Threshold(); full && st.HasBound &&
			core.CannotBeat(p.adjustBound(st.Bound, dist), kappa, dist) {
			st.Skipped = true
			res.Stats.SegmentsSkipped++
			res.Compressed.FilterStats.SegmentsSkipped++
			continue
		}
		start := time.Now()
		out := p.runStep(st)
		if out.err != nil {
			return Result{}, out.err
		}
		if out.empty {
			continue
		}
		fold(st, out, time.Since(start))
	}

	if executed {
		p.model.countQuery()
	}
	res.Truncated = p.Truncated
	if len(lists) == 0 {
		if p.Truncated {
			return res, nil
		}
		return Result{}, core.ErrNoCandidates
	}
	res.Results = topk.Merge(opts.K, !dist, lists...)
	res.Compressed.Results = res.Results
	return res, nil
}

// adjustBound applies the approximation tolerance to a segment bound: a
// segment that cannot improve κ by more than Tolerance is treated as
// beaten. Zero tolerance keeps the strict (exact) comparison.
func (p *Plan) adjustBound(bound float64, dist bool) float64 {
	if p.Spec.Tolerance <= 0 {
		return bound
	}
	if dist {
		return bound + p.Spec.Tolerance
	}
	return bound - p.Spec.Tolerance
}

func (p *Plan) pastDeadline() bool {
	return !p.Spec.Deadline.IsZero() && time.Now().After(p.Spec.Deadline)
}

// runStep executes one step's access path over its segment, filling the
// step's outcome fields.
func (p *Plan) runStep(st *Step) stepOutcome {
	seg := p.segs[st.Segment]
	src := seg.View.Src
	vopts := p.Opts
	vopts.Exclude = core.LocalExclude(p.Opts.Exclude, st.Base, st.N)

	switch st.Path {
	case PathBOND:
		r, empty, err := core.SearchOne(src, p.Spec.Query, vopts)
		if empty || err != nil {
			return stepOutcome{empty: empty, err: err}
		}
		st.ActualCost = float64(r.Stats.ValuesScanned)
		st.Candidates = r.Stats.FinalCandidates
		return stepOutcome{rs: core.Rebase(r.Results, st.Base), bondStats: r.Stats}

	case PathCompressed:
		sub, empty := core.SearchCompressedOne(src, seg.Codes(), p.Spec.Query, vopts)
		if empty {
			return stepOutcome{empty: true}
		}
		st.ActualCost = CodeCost*float64(sub.FilterStats.ValuesScanned) + float64(sub.RefineValuesScanned)
		st.Candidates = sub.FilterCandidates
		return stepOutcome{rs: core.Rebase(sub.Results, st.Base), comp: sub}

	case PathVAFile:
		return p.runVAFile(st, seg, vopts)

	case PathExact:
		rs, scanned := core.ExactScan(src, p.Spec.Query, vopts)
		if rs == nil {
			return stepOutcome{empty: true}
		}
		st.ActualCost = float64(scanned)
		st.Candidates = len(rs)
		return stepOutcome{rs: core.Rebase(rs, st.Base), exactScanned: scanned}

	case PathMIL:
		milOpts := core.MILOptions{
			K:            p.Spec.K,
			Step:         p.Spec.Step,
			BitmapSwitch: p.Spec.BitmapSwitch,
			Exclude:      vopts.Exclude,
		}
		r, err := core.SearchMIL(src, p.Spec.Query, milOpts)
		if err == core.ErrNoCandidates {
			return stepOutcome{empty: true}
		}
		if err != nil {
			return stepOutcome{err: err}
		}
		st.ActualCost = float64(r.Stats.ValuesScanned)
		st.Candidates = r.Stats.FinalCandidates
		return stepOutcome{rs: core.Rebase(r.Results, st.Base), bondStats: r.Stats}
	}
	return stepOutcome{err: fmt.Errorf("plan: unknown path %v", st.Path)}
}

// runVAFile is the VA-File access path: filter over the segment's
// row-major codes (skipping deleted and excluded ids), then exact
// refinement on the columns in natural dimension order — the same
// summation order the compressed refine and exact-scan paths use, so a
// segment answers identically whichever path the planner picks.
func (p *Plan) runVAFile(st *Step, seg Segment, vopts core.Options) stepOutcome {
	src := seg.View.Src
	f := seg.VA()
	deleted := src.DeletedBitmap()
	excl := vopts.Exclude
	skip := func(id int) bool {
		if deleted.Get(id) {
			return true
		}
		return excl != nil && id < excl.Len() && excl.Get(id)
	}
	q := p.Spec.Query
	dist := vopts.Criterion.Distance()
	tbl := p.vaTable(f, dist)

	var ids []int
	var fst vafileStats
	if dist {
		raw, s := f.FilterEuclideanLive(tbl, q, vopts.K, skip)
		ids, fst = raw, vafileStats{codes: s.CodesScanned}
	} else {
		raw, s := f.FilterHistogramLive(tbl, q, vopts.K, skip)
		ids, fst = raw, vafileStats{codes: s.CodesScanned}
	}
	if len(ids) == 0 {
		return stepOutcome{empty: true}
	}

	score := make([]float64, len(ids))
	for d := 0; d < src.Dims(); d++ {
		col := src.Column(d)
		qd := q[d]
		for ci, id := range ids {
			v := col[id]
			if dist {
				diff := v - qd
				score[ci] += diff * diff
			} else if v < qd {
				score[ci] += v
			} else {
				score[ci] += qd
			}
		}
	}
	refine := int64(len(ids)) * int64(src.Dims())

	k := vopts.K
	if k > len(ids) {
		k = len(ids)
	}
	var h *topk.Heap
	if dist {
		h = topk.NewSmallest(k)
	} else {
		h = topk.NewLargest(k)
	}
	for ci, id := range ids {
		h.Push(id, score[ci])
	}

	st.ActualCost = CodeCost*float64(fst.codes) + float64(refine)
	st.Candidates = len(ids)
	return stepOutcome{
		rs:       core.Rebase(h.Results(), st.Base),
		vaCodes:  fst.codes,
		vaCands:  len(ids),
		vaRefine: refine,
	}
}

type vafileStats struct{ codes int64 }

// vaTable returns the query's shared VA-File bound table, building it on
// the first VA step (segments share one quantization grid, so one table
// serves them all; a segment on a different grid gets a private table).
func (p *Plan) vaTable(f *vafile.File, dist bool) *vafile.Table {
	build := func() *vafile.Table {
		if dist {
			return vafile.NewEuclideanTable(f.Quantizer(), p.Spec.Query)
		}
		return vafile.NewHistogramTable(f.Quantizer(), p.Spec.Query)
	}
	p.vaOnce.Do(func() { p.vaTbl = build() })
	if !p.vaTbl.Fits(f) {
		return build()
	}
	return p.vaTbl
}

// feedback folds a step's observed cost back into the model, normalizing
// out the shape factor so the stored coefficients stay segment-neutral.
// elapsed divides by the step's cost in coefficient-equivalents to give
// the per-path time coefficient.
func (p *Plan) feedback(st *Step, out stepOutcome, elapsed time.Duration) {
	n := float64(st.N)
	nd := n * float64(p.Dims)
	if nd == 0 {
		return
	}
	ns := 0.0
	if st.ActualCost > 0 && elapsed > 0 {
		ns = float64(elapsed.Nanoseconds()) / st.ActualCost
	}
	switch st.Path {
	case PathBOND:
		shape := st.shape
		if shape <= 0 {
			shape = 1
		}
		p.model.observeBond(float64(out.bondStats.ValuesScanned)/(nd*shape), ns)
	case PathCompressed:
		p.model.observeCompressed(
			float64(out.comp.FilterStats.ValuesScanned)/nd,
			float64(out.comp.FilterCandidates)/n,
			ns)
	case PathVAFile:
		p.model.observeVA(float64(out.vaCands)/n, ns)
	case PathExact:
		p.model.observeExact(ns)
	}
}

package plan

import (
	"fmt"
	"sync"
	"time"

	"bond/internal/core"
	"bond/internal/kernel"
	"bond/internal/topk"
	"bond/internal/vafile"
)

// Result is a completed planned query. Results and Stats are the merged
// exact answer and work statistics; Compressed carries the
// filter-and-refine counters the legacy compressed entry point reports
// (populated whenever compressed, VA-File, or exact-scan steps ran).
type Result struct {
	Results []topk.Result
	Stats   core.Stats
	// Compressed aggregates the filter-and-refine counters; its Results
	// field mirrors Results so it is a complete core.CompressedResult.
	Compressed core.CompressedResult
	// Truncated reports that the deadline stopped execution before every
	// planned segment ran; the answer covers the segments searched.
	Truncated bool
}

// stepOutcome is what one executed step produced, before folding. Its
// result list aliases the scratch that ran the step and is consumed by
// fold before the scratch runs another step.
type stepOutcome struct {
	rs    []topk.Result // rebased to global ids
	empty bool
	err   error

	bondStats    core.Stats            // PathBOND, PathMIL
	comp         core.CompressedResult // PathCompressed
	exactScanned int64                 // PathExact
	vaCodes      int64                 // PathVAFile
	vaCands      int
	vaRefine     int64
}

// execScratch bundles the per-query reusable state of one executor lane:
// the engine scratch every access path runs on, the VA-File filter
// scratch with the per-query bound table, the global κ heap, the merged
// step logs, and the parallel fan-out staging. The model keeps a free
// list of these, so steady-state queries allocate nothing here.
type execScratch struct {
	core core.Scratch

	va      vafile.Scratch
	vaTbl   *vafile.Table
	vaBuilt bool          // vaTbl holds this query's bounds
	vaScore []float64     // VA refinement scores
	vaOut   *topk.Heap    // VA refinement ranking heap
	vaRes   []topk.Result // VA refinement result staging

	kappa     *topk.Heap
	steps     []core.StepStat // merged Stats.Steps staging
	compSteps []core.StepStat // merged Compressed.FilterStats.Steps staging

	outs []parOutcome // parallel fan-out staging
}

// parOutcome is one parallel step's outcome with its measured wall time
// and the scratch lane that produced it (released after folding).
type parOutcome struct {
	out     stepOutcome
	elapsed time.Duration
	lane    *execScratch
}

// Execute runs the plan and merges the per-segment answers into the exact
// global top-k, feeding observed costs back into the plan's model. The
// parallel fan-out group runs first (concurrently); the sequential tail
// then runs best-bound-first with synopsis skipping against the running
// κ, exactly as the legacy segmented search did, so forced-strategy plans
// return byte-identical results and statistics.
func Execute(p *Plan) (Result, error) {
	sc := p.model.acquireScratch()
	defer p.model.releaseScratch(sc)
	return p.execute(sc)
}

func (p *Plan) execute(sc *execScratch) (Result, error) {
	// Once execution finishes, drop the segment handles: Explain only
	// needs Steps and the model snapshot, and a caller holding the plan
	// (e.g. to log it later) must not pin the segments' columns and cached
	// code arrays past compaction.
	defer func() { p.segs = nil }()
	sc.vaBuilt = false
	sc.steps = sc.steps[:0]
	sc.compSteps = sc.compSteps[:0]

	opts := p.Opts
	dist := opts.Criterion.Distance()
	if sc.kappa == nil {
		sc.kappa = topk.NewLargest(opts.K)
	}
	kappaHeap := sc.kappa
	kappaHeap.Reset(opts.K, !dist)

	var res Result
	executed := false
	folded := 0

	fold := func(st *Step, out stepOutcome, elapsed time.Duration) {
		st.Executed = true
		executed = true
		folded++
		p.feedback(st, out, elapsed)
		switch st.Path {
		case PathBOND, PathMIL:
			res.Stats.SegmentsSearched++
			mergeCounters(&res.Stats, out.bondStats)
			sc.steps = appendSteps(sc.steps, out.bondStats.Steps, st.Segment)
		case PathCompressed:
			res.Stats.SegmentsSearched++
			mergeCounters(&res.Stats, out.comp.FilterStats)
			res.Stats.ValuesScanned += out.comp.RefineValuesScanned
			sc.steps = appendSteps(sc.steps, out.comp.FilterStats.Steps, st.Segment)
			res.Compressed.FilterCandidates += out.comp.FilterCandidates
			mergeCounters(&res.Compressed.FilterStats, out.comp.FilterStats)
			sc.compSteps = appendSteps(sc.compSteps, out.comp.FilterStats.Steps, st.Segment)
			res.Compressed.RefineValuesScanned += out.comp.RefineValuesScanned
			res.Compressed.FilterStats.SegmentsSearched++
		case PathExact:
			res.Stats.SegmentsSearched++
			res.Stats.ValuesScanned += out.exactScanned
			res.Compressed.ExactValuesScanned += out.exactScanned
			res.Compressed.FilterStats.SegmentsSearched++
		case PathVAFile:
			res.Stats.SegmentsSearched++
			res.Stats.ValuesScanned += out.vaCodes + out.vaRefine
			res.Compressed.FilterCandidates += out.vaCands
			res.Compressed.FilterStats.ValuesScanned += out.vaCodes
			res.Compressed.RefineValuesScanned += out.vaRefine
			res.Compressed.FilterStats.SegmentsSearched++
		}
		for _, r := range out.rs {
			kappaHeap.Push(r.ID, r.Score)
		}
	}

	// Phase 1: the parallel fan-out group (no skipping — all its segments
	// start before any κ exists — but its answers seed κ for phase 2).
	npar := 0
	for npar < len(p.Steps) && p.Steps[npar].Parallel {
		npar++
	}
	switch {
	case npar > 0 && p.pastDeadline():
		p.Truncated = true
	case npar > 0:
		outs := grow(sc.outs, npar)[:npar]
		sc.outs = outs
		var wg sync.WaitGroup
		for i := 0; i < npar; i++ {
			// Each goroutine runs on its own scratch lane; the first one
			// reuses this query's lane.
			lane := sc
			if i > 0 {
				lane = p.model.acquireScratch()
			}
			outs[i].lane = lane
			wg.Add(1)
			go func(i int, lane *execScratch) {
				defer wg.Done()
				// Per-step wall time is measured inside the goroutine so
				// parallel plans feed the learned ns-per-cell too; fan-out
				// contention inflates it somewhat, which the model's EWMA
				// and clamping absorb.
				start := time.Now()
				outs[i].out = p.runStep(&p.Steps[i], lane)
				outs[i].elapsed = time.Since(start)
			}(i, lane)
		}
		wg.Wait()
		var ferr error
		for i := 0; i < npar; i++ {
			o := &outs[i]
			switch {
			case o.out.err != nil:
				if ferr == nil {
					ferr = fmt.Errorf("core: segment %d: %w", p.Steps[i].Segment, o.out.err)
				}
			case !o.out.empty && ferr == nil:
				// Fold (which consumes the lane-aliased results) before the
				// lane can be released or reused.
				fold(&p.Steps[i], o.out, o.elapsed)
			}
			if o.lane != sc {
				p.model.releaseScratch(o.lane)
			}
			o.lane = nil
			o.out = stepOutcome{}
		}
		if ferr != nil {
			return Result{}, ferr
		}
	}

	// Phase 2: the sequential tail, best-bound-first with skipping.
	for i := npar; i < len(p.Steps); i++ {
		st := &p.Steps[i]
		if p.pastDeadline() {
			p.Truncated = true
			break
		}
		if kappa, full := kappaHeap.Threshold(); full && st.HasBound &&
			core.CannotBeat(p.adjustBound(st.Bound, dist), kappa, dist) {
			st.Skipped = true
			res.Stats.SegmentsSkipped++
			res.Compressed.FilterStats.SegmentsSkipped++
			continue
		}
		start := time.Now()
		out := p.runStep(st, sc)
		if out.err != nil {
			return Result{}, out.err
		}
		if out.empty {
			continue
		}
		fold(st, out, time.Since(start))
	}

	p.countQuery(executed)
	res.Truncated = p.Truncated
	if folded == 0 {
		if p.Truncated {
			return res, nil
		}
		return Result{}, core.ErrNoCandidates
	}
	// The κ heap saw every per-segment result and its retained set is a
	// pure function of the offered results (score-then-id tie-break), so it
	// IS the exact merged top-k — no per-segment lists to merge. The copies
	// below are the only per-query allocations of a steady-state Query: the
	// returned result list and one backing array for the returned step logs
	// (everything else the caller receives is by value).
	res.Results = kappaHeap.Results()
	res.Compressed.Results = res.Results
	if n1, n2 := len(sc.steps), len(sc.compSteps); n1+n2 > 0 {
		buf := make([]core.StepStat, n1+n2)
		copy(buf, sc.steps)
		copy(buf[n1:], sc.compSteps)
		res.Stats.Steps = buf[:n1:n1]
		res.Compressed.FilterStats.Steps = buf[n1:]
	}
	return res, nil
}

// mergeCounters folds a segment's scalar work counters into an aggregate
// (the step logs are staged separately in the executor scratch).
func mergeCounters(dst *core.Stats, src core.Stats) {
	dst.ValuesScanned += src.ValuesScanned
	dst.FinalCandidates += src.FinalCandidates
	if src.DimsUntilK > dst.DimsUntilK {
		dst.DimsUntilK = src.DimsUntilK
	}
}

// appendSteps copies a segment's pruning-step log into the staging buffer,
// tagging each entry with the physical segment index.
func appendSteps(dst []core.StepStat, src []core.StepStat, segment int) []core.StepStat {
	for _, st := range src {
		st.Segment = segment
		dst = append(dst, st)
	}
	return dst
}

// grow returns s with length 0 and capacity at least n, reusing the
// backing array when possible.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, 0, n)
	}
	return s[:0]
}

// adjustBound applies the approximation tolerance to a segment bound: a
// segment that cannot improve κ by more than Tolerance is treated as
// beaten. Zero tolerance keeps the strict (exact) comparison.
func (p *Plan) adjustBound(bound float64, dist bool) float64 {
	if p.Spec.Tolerance <= 0 {
		return bound
	}
	if dist {
		return bound + p.Spec.Tolerance
	}
	return bound - p.Spec.Tolerance
}

func (p *Plan) pastDeadline() bool {
	return !p.Spec.Deadline.IsZero() && time.Now().After(p.Spec.Deadline)
}

// runStep executes one step's access path over its segment on the given
// scratch lane, filling the step's outcome fields.
func (p *Plan) runStep(st *Step, sc *execScratch) stepOutcome {
	seg := p.segs[st.Segment]
	src := seg.View.Src
	vopts := p.Opts
	vopts.Exclude = core.LocalExclude(p.Opts.Exclude, st.Base, st.N)

	switch st.Path {
	case PathBOND:
		r, empty, err := core.SearchOneScratch(src, p.Spec.Query, vopts, &sc.core)
		if empty || err != nil {
			return stepOutcome{empty: empty, err: err}
		}
		st.ActualCost = float64(r.Stats.ValuesScanned)
		st.Candidates = r.Stats.FinalCandidates
		return stepOutcome{rs: core.RebaseInPlace(r.Results, st.Base), bondStats: r.Stats}

	case PathCompressed:
		sub, empty := core.SearchCompressedOneScratch(src, seg.Codes(), p.Spec.Query, vopts, &sc.core)
		if empty {
			return stepOutcome{empty: true}
		}
		st.ActualCost = CodeCost*float64(sub.FilterStats.ValuesScanned) + float64(sub.RefineValuesScanned)
		st.Candidates = sub.FilterCandidates
		sub.Results = core.RebaseInPlace(sub.Results, st.Base)
		return stepOutcome{rs: sub.Results, comp: sub}

	case PathVAFile:
		return p.runVAFile(st, seg, vopts, sc)

	case PathExact:
		rs, scanned := core.ExactScanScratch(src, p.Spec.Query, vopts, &sc.core)
		if rs == nil {
			return stepOutcome{empty: true}
		}
		st.ActualCost = float64(scanned)
		st.Candidates = len(rs)
		return stepOutcome{rs: core.RebaseInPlace(rs, st.Base), exactScanned: scanned}

	case PathMIL:
		milOpts := core.MILOptions{
			K:            p.Spec.K,
			Step:         p.Spec.Step,
			BitmapSwitch: p.Spec.BitmapSwitch,
			Exclude:      vopts.Exclude,
		}
		r, err := core.SearchMILScratch(src, p.Spec.Query, milOpts, &sc.core)
		if err == core.ErrNoCandidates {
			return stepOutcome{empty: true}
		}
		if err != nil {
			return stepOutcome{err: err}
		}
		st.ActualCost = float64(r.Stats.ValuesScanned)
		st.Candidates = r.Stats.FinalCandidates
		return stepOutcome{rs: core.RebaseInPlace(r.Results, st.Base), bondStats: r.Stats}
	}
	return stepOutcome{err: fmt.Errorf("plan: unknown path %v", st.Path)}
}

// runVAFile is the VA-File access path: filter over the segment's
// row-major codes (skipping deleted and excluded ids), then exact
// refinement on the columns in natural dimension order — the same
// summation order the compressed refine and exact-scan paths use, so a
// segment answers identically whichever path the planner picks.
func (p *Plan) runVAFile(st *Step, seg Segment, vopts core.Options, sc *execScratch) stepOutcome {
	src := seg.View.Src
	f := seg.VA()
	deleted := core.DeletedView(src)
	excl := vopts.Exclude
	skip := func(id int) bool {
		if deleted.Get(id) {
			return true
		}
		return excl != nil && id < excl.Len() && excl.Get(id)
	}
	q := p.Spec.Query
	dist := vopts.Criterion.Distance()
	tbl := p.vaTable(f, dist, sc)

	var ids []int
	var fst vafileStats
	if dist {
		raw, s := f.FilterEuclideanLiveScratch(tbl, q, vopts.K, skip, &sc.va)
		ids, fst = raw, vafileStats{codes: s.CodesScanned}
	} else {
		raw, s := f.FilterHistogramLiveScratch(tbl, q, vopts.K, skip, &sc.va)
		ids, fst = raw, vafileStats{codes: s.CodesScanned}
	}
	if len(ids) == 0 {
		return stepOutcome{empty: true}
	}

	score := zeroedFloats(sc.vaScore, len(ids))
	sc.vaScore = score
	for d := 0; d < src.Dims(); d++ {
		col := src.Column(d)
		if dist {
			kernel.AccSqDist(score, col, ids, q[d])
		} else {
			kernel.AccMinQ(score, col, ids, q[d])
		}
	}
	refine := int64(len(ids)) * int64(src.Dims())

	k := vopts.K
	if k > len(ids) {
		k = len(ids)
	}
	if sc.vaOut == nil {
		sc.vaOut = topk.NewLargest(k)
	}
	h := sc.vaOut
	h.Reset(k, !dist)
	for ci, id := range ids {
		h.Push(id, score[ci])
	}
	sc.vaRes = h.AppendResults(sc.vaRes[:0])

	st.ActualCost = CodeCost*float64(fst.codes) + float64(refine)
	st.Candidates = len(ids)
	return stepOutcome{
		rs:       core.RebaseInPlace(sc.vaRes, st.Base),
		vaCodes:  fst.codes,
		vaCands:  len(ids),
		vaRefine: refine,
	}
}

// zeroedFloats returns s resized to exactly n zero values, reusing the
// backing array when possible.
func zeroedFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

type vafileStats struct{ codes int64 }

// vaTable returns the query's shared VA-File bound table, (re)built into
// the scratch on the first VA step of the execution (segments share one
// quantization grid, so one table serves them all; a segment on a
// different grid gets a private table).
func (p *Plan) vaTable(f *vafile.File, dist bool, sc *execScratch) *vafile.Table {
	if !sc.vaBuilt {
		if sc.vaTbl == nil {
			sc.vaTbl = &vafile.Table{}
		}
		if dist {
			sc.vaTbl.BuildEuclidean(f.Quantizer(), p.Spec.Query)
		} else {
			sc.vaTbl.BuildHistogram(f.Quantizer(), p.Spec.Query)
		}
		sc.vaBuilt = true
	}
	if !sc.vaTbl.Fits(f) {
		if dist {
			return vafile.NewEuclideanTable(f.Quantizer(), p.Spec.Query)
		}
		return vafile.NewHistogramTable(f.Quantizer(), p.Spec.Query)
	}
	return sc.vaTbl
}

// feedback folds a step's observed cost back into the model (or the
// query's batch accumulator), normalizing out the shape factor so the
// stored coefficients stay segment-neutral. elapsed divides by the step's
// cost in coefficient-equivalents to give the per-path time coefficient.
func (p *Plan) feedback(st *Step, out stepOutcome, elapsed time.Duration) {
	n := float64(st.N)
	nd := n * float64(p.Dims)
	if nd == 0 {
		return
	}
	ns := 0.0
	if st.ActualCost > 0 && elapsed > 0 {
		ns = float64(elapsed.Nanoseconds()) / st.ActualCost
	}
	if st.mapped {
		// The first scan of a mapped segment since open pays the page
		// faults for every column it touches — a one-time cost that would
		// poison the steady-state coefficient, so its time is dropped (the
		// fraction observations stay: pruning behaves the same cold or
		// warm).
		if seg := &p.segs[st.Segment]; seg.NoteScan != nil && seg.NoteScan() {
			ns = 0
		}
	}
	sink := observer(p.model)
	if p.fb != nil {
		sink = p.fb
	}
	switch st.Path {
	case PathBOND:
		shape := st.shape
		if shape <= 0 {
			shape = 1
		}
		sink.observeBond(float64(out.bondStats.ValuesScanned)/(nd*shape), ns, st.mapped)
	case PathCompressed:
		sink.observeCompressed(
			float64(out.comp.FilterStats.ValuesScanned)/nd,
			float64(out.comp.FilterCandidates)/n,
			ns, st.mapped)
	case PathVAFile:
		sink.observeVA(float64(out.vaCands)/n, ns, st.mapped)
	case PathExact:
		sink.observeExact(ns, st.mapped)
	}
}

// countQuery attributes one executed query to the model or the batch
// accumulator.
func (p *Plan) countQuery(executed bool) {
	if !executed {
		return
	}
	if p.fb != nil {
		p.fb.countQuery()
		return
	}
	p.model.countQuery()
}

package plan

import "testing"

// Mapped and heap time observations must land on separate coefficients:
// the planner ranks a mapped segment by its own history.
func TestObserveRoutesByBacking(t *testing.T) {
	m := NewModel()
	m.observeBond(0.5, 9.0, false)
	m.observeBond(0.5, 1.0, true)
	c := m.Snapshot()
	if c.BondNs <= c.BondNsMapped {
		t.Fatalf("BondNs=%v should exceed BondNsMapped=%v after slow-heap/fast-mapped feedback",
			c.BondNs, c.BondNsMapped)
	}
	if c.BondNsMapped == defaultNsPerCell {
		t.Fatalf("mapped observation did not move BondNsMapped off the prior")
	}

	m2 := NewModel()
	m2.observeExact(9.0, true)
	c2 := m2.Snapshot()
	if c2.ExactNs != defaultNsPerCell {
		t.Fatalf("mapped exact observation leaked into heap ExactNs=%v", c2.ExactNs)
	}
	if c2.ExactNsMapped == defaultNsPerCell {
		t.Fatalf("mapped exact observation did not move ExactNsMapped")
	}
}

// A statistics block persisted before the mapped coefficients existed
// unmarshals them as zero; the model must restore the prior, not clamp to
// the 0.05 floor (which would rank mapped paths as wildly fast on no
// evidence).
func TestLoadModelAbsentMappedNsDefaults(t *testing.T) {
	old := []byte(`{"queries":10,"bond_frac":0.4,"bond_ns_per_cell":5.5}`)
	c := LoadModel(old).Snapshot()
	if c.BondNs != 5.5 {
		t.Fatalf("BondNs = %v, want the persisted 5.5", c.BondNs)
	}
	for name, got := range map[string]float64{
		"BondNsMapped":  c.BondNsMapped,
		"ComprNsMapped": c.ComprNsMapped,
		"VANsMapped":    c.VANsMapped,
		"ExactNsMapped": c.ExactNsMapped,
		"ComprNs":       c.ComprNs,
		"VANs":          c.VANs,
		"ExactNs":       c.ExactNs,
	} {
		if got != defaultNsPerCell {
			t.Fatalf("%s = %v, want the %v prior for an absent field", name, got, defaultNsPerCell)
		}
	}
}

// A batch with both backings must flush each mean onto its own
// coefficient set.
func TestFeedbackBatchSplitsBackings(t *testing.T) {
	m := NewModel()
	fb := NewFeedbackBatch()
	fb.observeVA(0.1, 8.0, false)
	fb.observeVA(0.1, 1.0, true)
	fb.countQuery()
	fb.Flush(m)
	c := m.Snapshot()
	if c.VANs <= c.VANsMapped {
		t.Fatalf("VANs=%v should exceed VANsMapped=%v", c.VANs, c.VANsMapped)
	}
	if c.Queries != 1 {
		t.Fatalf("Queries = %d, want 1", c.Queries)
	}
}

// DecayForRewrite(1) must reset the mapped coefficients too.
func TestDecayResetsMappedNs(t *testing.T) {
	m := NewModel()
	m.observeBond(0.5, 50, true)
	m.DecayForRewrite(1)
	if c := m.Snapshot(); c.BondNsMapped != defaultNsPerCell {
		t.Fatalf("BondNsMapped = %v after full decay, want prior %v", c.BondNsMapped, defaultNsPerCell)
	}
}

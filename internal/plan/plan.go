package plan

import (
	"fmt"
	"sort"
	"sync"

	"bond/internal/core"
	"bond/internal/vafile"
)

// Path is the access path a plan step assigns to one segment.
type Path int

const (
	// PathBOND is the branch-and-bound scan over the exact columns.
	PathBOND Path = iota
	// PathCompressed is the 8-bit filter-and-refine scan.
	PathCompressed
	// PathVAFile is the VA-File filter over row-major codes plus exact
	// refinement.
	PathVAFile
	// PathExact is a full exact scan (the seqscan oracle per segment).
	PathExact
	// PathMIL is the MIL relational-operator reference engine.
	PathMIL
)

// String names the path as EXPLAIN prints it.
func (p Path) String() string {
	switch p {
	case PathBOND:
		return "bond"
	case PathCompressed:
		return "compressed"
	case PathVAFile:
		return "vafile"
	case PathExact:
		return "exact"
	case PathMIL:
		return "mil"
	}
	return fmt.Sprintf("Path(%d)", int(p))
}

// Step is one per-segment entry of a plan, in execution order. The
// planner fills the prediction fields; the executor fills the outcome.
type Step struct {
	// Segment is the physical segment index (position in the store).
	Segment int
	// Base is the global id of the segment's local id 0; N its slot count.
	Base, N int
	// Sealed marks immutable segments.
	Sealed bool
	// Path is the chosen access path.
	Path Path
	// Parallel marks the step as part of the fan-out group the executor
	// runs concurrently before the sequential tail.
	Parallel bool
	// Bound is the synopsis bound — the best score any member could
	// reach; HasBound is false when the segment has no usable synopsis.
	Bound    float64
	HasBound bool
	// PredCost is the predicted cost in coefficient-equivalents.
	PredCost float64

	// Executed reports that the step ran; Skipped that the synopsis
	// dismissed the segment at run time (κ already unbeatable).
	Executed bool
	Skipped  bool
	// ActualCost is the measured cost in coefficient-equivalents.
	ActualCost float64
	// Candidates is the number of vectors surviving the step's filter
	// (compressed/VA paths) or final BOND candidate set.
	Candidates int

	// shape is the BOND cost scale derived from the synopsis, kept so the
	// executor can normalize it back out of observed costs.
	shape float64
}

// Plan is a planned query: the validated spec, the ordered per-segment
// steps, and the model snapshot the predictions came from. Execute runs
// it; Explain renders it.
type Plan struct {
	Spec Spec
	// Opts is the validated, default-filled engine options.
	Opts core.Options
	// Steps is the per-segment plan in execution order (parallel group
	// first, then sequential best-bound-first so κ tightens fast).
	Steps []Step
	// Dims and Slots describe the planned collection.
	Dims, Slots int
	// Model is the coefficient snapshot used for the predictions.
	Model Coefficients
	// Truncated reports that the deadline stopped execution early.
	Truncated bool

	segs  []Segment
	model *Model

	// vaTbl is the per-query VA-File bound table, built once at the first
	// VA step and shared by every segment (the bounds depend only on the
	// quantization grid and the query).
	vaOnce sync.Once
	vaTbl  *vafile.Table
}

// parallelMinSegment is the smallest segment Auto fans out when the spec
// carries a parallelism hint — below this, goroutine overhead dominates.
const parallelMinSegment = 2048

// New plans a query over the given segments. The spec is validated (and
// defaults filled) exactly as the legacy entry points validated options,
// so forced-strategy plans reproduce their behavior including errors.
// model may be nil, which plans from the default priors and discards
// feedback.
func New(segs []Segment, spec Spec, model *Model) (*Plan, error) {
	views := make([]core.SegmentView, len(segs))
	for i, s := range segs {
		views[i] = s.View
	}
	opts := spec.options()
	if err := core.ValidateSegments(views, spec.Query, &opts); err != nil {
		return nil, err
	}
	if spec.Strategy == ForceCompressed || spec.Strategy == ForceVAFile {
		if err := core.ValidateCompressed(opts); err != nil {
			return nil, err
		}
	}
	if spec.Strategy == ForceMIL && opts.Criterion != core.Hq {
		return nil, fmt.Errorf("plan: the MIL path ranks by Hq, not %v", opts.Criterion)
	}
	if model == nil {
		model = NewModel()
	}
	p := &Plan{
		Spec:  spec,
		Opts:  opts,
		Dims:  views[0].Src.Dims(),
		Model: model.Snapshot(),
		segs:  segs,
		model: model,
	}
	for _, v := range views {
		p.Slots += v.Src.Len()
	}

	dist := opts.Criterion.Distance()
	queryMass := effectiveQueryMass(spec.Query, opts)
	compressedOK := core.ValidateCompressed(opts) == nil

	for i, s := range segs {
		n := s.View.Src.Len()
		if n == 0 {
			continue
		}
		st := Step{Segment: i, Base: s.View.Base, N: n, Sealed: s.Sealed}
		st.Bound, st.HasBound = core.SegBound(s.View, spec.Query, opts)
		st.shape = shapeFactor(st.Bound, st.HasBound, dist, queryMass)
		st.Path, st.PredCost = choosePath(p.Model, spec.Strategy, s, compressedOK, n, p.Dims, st.shape)
		if st.Path == PathMIL {
			// The MIL reference engine searches every segment, as the
			// legacy SearchMIL did: no synopsis skipping.
			st.HasBound = false
		}
		st.Parallel = spec.Parallel >= 2 && st.Path == PathBOND &&
			(spec.Strategy == ForceBOND || n >= parallelMinSegment)
		p.Steps = append(p.Steps, st)
	}
	p.orderSteps(dist)
	return p, nil
}

// choosePath assigns the access path and its predicted cost for one
// segment. Forced strategies map directly (falling back to an exact scan
// where the path needs codes a mutable segment cannot offer, exactly as
// the legacy compressed search treated the active segment); Auto takes
// the cheapest eligible prediction.
func choosePath(m Coefficients, strat Strategy, s Segment, compressedOK bool, n, dims int, shape float64) (Path, float64) {
	canCompress := compressedOK && s.Sealed && s.Codes != nil
	canVA := compressedOK && s.Sealed && s.VA != nil
	switch strat {
	case ForceBOND:
		return PathBOND, m.predictBond(n, dims, shape)
	case ForceExact:
		return PathExact, m.predictExact(n, dims)
	case ForceMIL:
		return PathMIL, m.predictExact(n, dims)
	case ForceCompressed:
		if canCompress {
			return PathCompressed, m.predictCompressed(n, dims)
		}
		return PathExact, m.predictExact(n, dims)
	case ForceVAFile:
		if canVA {
			return PathVAFile, m.predictVAFile(n, dims)
		}
		return PathExact, m.predictExact(n, dims)
	}
	// Auto ranks by predicted wall time: cells × the learned per-path
	// ns/cell, so a path that reads few cells slowly (the compressed
	// filter's per-step kfetch) loses to one that reads more cells in a
	// tight loop. With a fresh model all ns priors are equal and the
	// ranking reduces to cell count.
	best, cost := PathBOND, m.predictBond(n, dims, shape)
	bestTime := cost * m.BondNs
	if canCompress {
		if c := m.predictCompressed(n, dims); c*m.ComprNs < bestTime {
			best, cost, bestTime = PathCompressed, c, c*m.ComprNs
		}
	}
	if canVA {
		if c := m.predictVAFile(n, dims); c*m.VANs < bestTime {
			best, cost, bestTime = PathVAFile, c, c*m.VANs
		}
	}
	return best, cost
}

// orderSteps arranges the execution order: the parallel fan-out group
// first (in segment order — it all runs concurrently anyway, and the
// early answers seed κ for the sequential tail), then the sequential
// steps with unbounded segments first (they must be searched regardless)
// followed by bounded ones best-first, so κ tightens as fast as possible
// and later segments can be skipped — the same discipline the legacy
// segmented search used.
func (p *Plan) orderSteps(dist bool) {
	sort.SliceStable(p.Steps, func(a, b int) bool {
		sa, sb := &p.Steps[a], &p.Steps[b]
		if sa.Parallel != sb.Parallel {
			return sa.Parallel
		}
		if sa.Parallel {
			return sa.Segment < sb.Segment
		}
		if sa.HasBound != sb.HasBound {
			return !sa.HasBound
		}
		if !sa.HasBound {
			return false
		}
		if sa.Bound != sb.Bound {
			if dist {
				return sa.Bound < sb.Bound
			}
			return sa.Bound > sb.Bound
		}
		return false
	})
}

// effectiveQueryMass is T(q) over the effective (weighted, subspaced)
// dimensions — the yardstick the similarity shape factor compares a
// segment's bound against.
func effectiveQueryMass(q []float64, opts core.Options) float64 {
	mass := 0.0
	if len(opts.Dims) > 0 {
		for _, d := range opts.Dims {
			w := 1.0
			if len(opts.Weights) > 0 {
				w = opts.Weights[d]
			}
			mass += w * q[d]
		}
		return mass
	}
	for d, qd := range q {
		w := 1.0
		if len(opts.Weights) > 0 {
			w = opts.Weights[d]
		}
		mass += w * qd
	}
	return mass
}

// PredictedCost sums the per-step predictions.
func (p *Plan) PredictedCost() float64 {
	var c float64
	for i := range p.Steps {
		c += p.Steps[i].PredCost
	}
	return c
}

// ActualCost sums the measured per-step costs (0 before Execute).
func (p *Plan) ActualCost() float64 {
	var c float64
	for i := range p.Steps {
		c += p.Steps[i].ActualCost
	}
	return c
}

package plan

import (
	"fmt"
	"slices"

	"bond/internal/core"
)

// Path is the access path a plan step assigns to one segment.
type Path int

const (
	// PathBOND is the branch-and-bound scan over the exact columns.
	PathBOND Path = iota
	// PathCompressed is the 8-bit filter-and-refine scan.
	PathCompressed
	// PathVAFile is the VA-File filter over row-major codes plus exact
	// refinement.
	PathVAFile
	// PathExact is a full exact scan (the seqscan oracle per segment).
	PathExact
	// PathMIL is the MIL relational-operator reference engine.
	PathMIL
)

// String names the path as EXPLAIN prints it.
func (p Path) String() string {
	switch p {
	case PathBOND:
		return "bond"
	case PathCompressed:
		return "compressed"
	case PathVAFile:
		return "vafile"
	case PathExact:
		return "exact"
	case PathMIL:
		return "mil"
	}
	return fmt.Sprintf("Path(%d)", int(p))
}

// Step is one per-segment entry of a plan, in execution order. The
// planner fills the prediction fields; the executor fills the outcome.
type Step struct {
	// Segment is the physical segment index (position in the store).
	Segment int
	// Base is the global id of the segment's local id 0; N its slot count.
	Base, N int
	// Sealed marks immutable segments.
	Sealed bool
	// Path is the chosen access path.
	Path Path
	// Parallel marks the step as part of the fan-out group the executor
	// runs concurrently before the sequential tail.
	Parallel bool
	// Bound is the synopsis bound — the best score any member could
	// reach; HasBound is false when the segment has no usable synopsis.
	Bound    float64
	HasBound bool
	// PredCost is the predicted cost in coefficient-equivalents.
	PredCost float64

	// Executed reports that the step ran; Skipped that the synopsis
	// dismissed the segment at run time (κ already unbeatable).
	Executed bool
	Skipped  bool
	// ActualCost is the measured cost in coefficient-equivalents.
	ActualCost float64
	// Candidates is the number of vectors surviving the step's filter
	// (compressed/VA paths) or final BOND candidate set.
	Candidates int

	// shape is the BOND cost scale derived from the synopsis, kept so the
	// executor can normalize it back out of observed costs.
	shape float64
	// mapped records the segment's backing at plan time, routing the
	// step's time feedback to the matching coefficient set.
	mapped bool
}

// Plan is a planned query: the validated spec, the ordered per-segment
// steps, and the model snapshot the predictions came from. Execute runs
// it; Explain renders it.
type Plan struct {
	Spec Spec
	// Opts is the validated, default-filled engine options.
	Opts core.Options
	// Steps is the per-segment plan in execution order (parallel group
	// first, then sequential best-bound-first so κ tightens fast).
	Steps []Step
	// Dims and Slots describe the planned collection.
	Dims, Slots int
	// Model is the coefficient snapshot used for the predictions.
	Model Coefficients
	// Truncated reports that the deadline stopped execution early.
	Truncated bool

	segs  []Segment
	model *Model

	// views is the validation staging buffer, kept for reuse on pooled
	// plans.
	views []core.SegmentView

	// fb, when set, receives execution feedback instead of the model —
	// the batch executor aggregates it and applies one EWMA step per path.
	fb *FeedbackBatch

	// pooled marks a plan owned by the model's free list (Release returns
	// it there).
	pooled bool
}

// parallelMinSegment is the smallest segment Auto fans out when the spec
// carries a parallelism hint — below this, goroutine overhead dominates.
const parallelMinSegment = 2048

// New plans a query over the given segments. The spec is validated (and
// defaults filled) exactly as the legacy entry points validated options,
// so forced-strategy plans reproduce their behavior including errors.
// model may be nil, which plans from the default priors and discards
// feedback.
func New(segs []Segment, spec Spec, model *Model) (*Plan, error) {
	p := &Plan{}
	if err := p.init(segs, spec, model); err != nil {
		return nil, err
	}
	return p, nil
}

// NewReusable is New planning into a pooled Plan owned by the model: when
// the caller is done (after Execute, and after copying anything it wants
// to keep), Release returns the plan to the pool. This is the hot-path
// variant Collection.Query uses so planning itself allocates nothing in
// steady state; callers that hand the plan out (EXPLAIN) use New instead.
func NewReusable(segs []Segment, spec Spec, model *Model) (*Plan, error) {
	if model == nil {
		return New(segs, spec, model)
	}
	p := model.acquirePlan()
	if err := p.init(segs, spec, model); err != nil {
		model.releasePlan(p)
		return nil, err
	}
	return p, nil
}

// UseBatchFeedback redirects the plan's execution feedback into a batch
// accumulator (see FeedbackBatch); nil restores direct model feedback.
func (p *Plan) UseBatchFeedback(fb *FeedbackBatch) { p.fb = fb }

// Release returns a plan obtained from NewReusable to its model's pool,
// dropping every reference it holds. It is a no-op for plans made by New.
func (p *Plan) Release() {
	if !p.pooled {
		return
	}
	m := p.model
	*p = Plan{
		Steps:  p.Steps[:0],
		views:  p.views[:0],
		pooled: true,
	}
	m.releasePlan(p)
}

// init (re)plans into p, reusing its step and view buffers.
func (p *Plan) init(segs []Segment, spec Spec, model *Model) error {
	views := p.views[:0]
	if cap(views) < len(segs) {
		views = make([]core.SegmentView, 0, len(segs))
	}
	for _, s := range segs {
		views = append(views, s.View)
	}
	p.views = views
	opts := spec.options()
	if err := core.ValidateSegments(views, spec.Query, &opts); err != nil {
		return err
	}
	if spec.Strategy == ForceCompressed || spec.Strategy == ForceVAFile {
		if err := core.ValidateCompressed(opts); err != nil {
			return err
		}
	}
	if spec.Strategy == ForceMIL && opts.Criterion != core.Hq {
		return fmt.Errorf("plan: the MIL path ranks by Hq, not %v", opts.Criterion)
	}
	if model == nil {
		model = NewModel()
	}
	pooled := p.pooled
	*p = Plan{
		Spec:   spec,
		Opts:   opts,
		Steps:  p.Steps[:0],
		Dims:   views[0].Src.Dims(),
		Model:  model.Snapshot(),
		segs:   segs,
		model:  model,
		views:  views,
		pooled: pooled,
	}
	for _, v := range views {
		p.Slots += v.Src.Len()
	}

	dist := opts.Criterion.Distance()
	queryMass := effectiveQueryMass(spec.Query, opts)
	compressedOK := core.ValidateCompressed(opts) == nil

	for i, s := range segs {
		n := s.View.Src.Len()
		if n == 0 {
			continue
		}
		st := Step{Segment: i, Base: s.View.Base, N: n, Sealed: s.Sealed, mapped: s.Mapped}
		st.Bound, st.HasBound = core.SegBound(s.View, spec.Query, opts)
		st.shape = shapeFactor(st.Bound, st.HasBound, dist, queryMass)
		st.Path, st.PredCost = choosePath(p.Model, spec.Strategy, s, compressedOK, n, p.Dims, st.shape)
		if st.Path == PathMIL {
			// The MIL reference engine searches every segment, as the
			// legacy SearchMIL did: no synopsis skipping.
			st.HasBound = false
		}
		st.Parallel = spec.Parallel >= 2 && st.Path == PathBOND &&
			(spec.Strategy == ForceBOND || n >= parallelMinSegment)
		p.Steps = append(p.Steps, st)
	}
	p.orderSteps(dist)
	return nil
}

// choosePath assigns the access path and its predicted cost for one
// segment. Forced strategies map directly (falling back to an exact scan
// where the path needs codes a mutable segment cannot offer, exactly as
// the legacy compressed search treated the active segment); Auto takes
// the cheapest eligible prediction.
func choosePath(m Coefficients, strat Strategy, s Segment, compressedOK bool, n, dims int, shape float64) (Path, float64) {
	canCompress := compressedOK && s.Sealed && s.Codes != nil
	canVA := compressedOK && s.Sealed && s.VA != nil
	switch strat {
	case ForceBOND:
		return PathBOND, m.predictBond(n, dims, shape)
	case ForceExact:
		return PathExact, m.predictExact(n, dims)
	case ForceMIL:
		return PathMIL, m.predictExact(n, dims)
	case ForceCompressed:
		if canCompress {
			return PathCompressed, m.predictCompressed(n, dims)
		}
		return PathExact, m.predictExact(n, dims)
	case ForceVAFile:
		if canVA {
			return PathVAFile, m.predictVAFile(n, dims)
		}
		return PathExact, m.predictExact(n, dims)
	}
	// Auto ranks by predicted wall time: cells × the learned per-path
	// ns/cell, so a path that reads few cells slowly (the compressed
	// filter's per-step kfetch) loses to one that reads more cells in a
	// tight loop. With a fresh model all ns priors are equal and the
	// ranking reduces to cell count. Mapped segments rank by their own
	// learned coefficients — the page cache can make their reads behave
	// differently from heap memory.
	best, cost := PathBOND, m.predictBond(n, dims, shape)
	bestTime := cost * m.pathNs(PathBOND, s.Mapped)
	if canCompress {
		if c := m.predictCompressed(n, dims); c*m.pathNs(PathCompressed, s.Mapped) < bestTime {
			best, cost, bestTime = PathCompressed, c, c*m.pathNs(PathCompressed, s.Mapped)
		}
	}
	if canVA {
		if c := m.predictVAFile(n, dims); c*m.pathNs(PathVAFile, s.Mapped) < bestTime {
			best, cost, bestTime = PathVAFile, c, c*m.pathNs(PathVAFile, s.Mapped)
		}
	}
	return best, cost
}

// orderSteps arranges the execution order: the parallel fan-out group
// first (in segment order — it all runs concurrently anyway, and the
// early answers seed κ for the sequential tail), then the sequential
// steps with unbounded segments first (they must be searched regardless)
// followed by bounded ones best-first, so κ tightens as fast as possible
// and later segments can be skipped — the same discipline the legacy
// segmented search used.
func (p *Plan) orderSteps(dist bool) {
	less := func(sa, sb *Step) bool {
		if sa.Parallel != sb.Parallel {
			return sa.Parallel
		}
		if sa.Parallel {
			return sa.Segment < sb.Segment
		}
		if sa.HasBound != sb.HasBound {
			return !sa.HasBound
		}
		if !sa.HasBound {
			return false
		}
		if sa.Bound != sb.Bound {
			if dist {
				return sa.Bound < sb.Bound
			}
			return sa.Bound > sb.Bound
		}
		return false
	}
	// slices.SortStableFunc rather than sort.SliceStable: the generic sort
	// needs no reflection and no per-call allocation.
	slices.SortStableFunc(p.Steps, func(a, b Step) int {
		switch {
		case less(&a, &b):
			return -1
		case less(&b, &a):
			return 1
		}
		return 0
	})
}

// effectiveQueryMass is T(q) over the effective (weighted, subspaced)
// dimensions — the yardstick the similarity shape factor compares a
// segment's bound against.
func effectiveQueryMass(q []float64, opts core.Options) float64 {
	mass := 0.0
	if len(opts.Dims) > 0 {
		for _, d := range opts.Dims {
			w := 1.0
			if len(opts.Weights) > 0 {
				w = opts.Weights[d]
			}
			mass += w * q[d]
		}
		return mass
	}
	for d, qd := range q {
		w := 1.0
		if len(opts.Weights) > 0 {
			w = opts.Weights[d]
		}
		mass += w * qd
	}
	return mass
}

// PredictedCost sums the per-step predictions.
func (p *Plan) PredictedCost() float64 {
	var c float64
	for i := range p.Steps {
		c += p.Steps[i].PredCost
	}
	return c
}

// ActualCost sums the measured per-step costs (0 before Execute).
func (p *Plan) ActualCost() float64 {
	var c float64
	for i := range p.Steps {
		c += p.Steps[i].ActualCost
	}
	return c
}

// Package plan implements the cost-based query planner of the collection
// layer: one QuerySpec in, a Plan out — an ordered list of per-segment
// steps, each choosing an access path from the segment's synopsis and a
// small adaptive per-collection cost model — and one executor that runs
// the plan through the shared engine primitives of package core.
//
// The paper's central claim is that the decomposed storage engine itself
// is the index; the planner is the piece that makes that operational. A
// vertically decomposed system (the paper's Section 6 targets MonetDB)
// routes every query through a planner that picks operators from
// statistics. Here the statistics are the per-segment min/max synopses
// of the segmented store plus execution feedback (coefficients read and
// candidates surviving per strategy), so the plans adapt as data and
// workloads shift.
package plan

import (
	"fmt"
	"strings"
	"time"

	"bond/internal/bitmap"
	"bond/internal/core"
	"bond/internal/vafile"
	"bond/internal/vstore"
)

// Strategy selects how the planner assigns access paths.
type Strategy int

const (
	// Auto picks the cheapest eligible path per segment from the cost
	// model — the default.
	Auto Strategy = iota
	// ForceBOND runs plain BOND on every segment.
	ForceBOND
	// ForceCompressed runs the 8-bit filter-and-refine path on every
	// sealed segment (exact scan on the active one).
	ForceCompressed
	// ForceVAFile runs the VA-File filter on every sealed segment (exact
	// scan on the active one).
	ForceVAFile
	// ForceExact runs a full exact scan on every segment — the seqscan
	// oracle as an access path.
	ForceExact
	// ForceMIL runs the MIL relational-operator reference engine on every
	// segment (criterion Hq).
	ForceMIL
)

// String names the strategy as the CLI spells it.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ForceBOND:
		return "bond"
	case ForceCompressed:
		return "compressed"
	case ForceVAFile:
		return "vafile"
	case ForceExact:
		return "exact"
	case ForceMIL:
		return "mil"
	}
	return fmt.Sprintf("Strategy(%d)", int(s))
}

// ParseStrategy parses a CLI strategy name.
func ParseStrategy(s string) (Strategy, error) {
	switch strings.ToLower(s) {
	case "auto", "":
		return Auto, nil
	case "bond":
		return ForceBOND, nil
	case "compressed":
		return ForceCompressed, nil
	case "vafile", "va":
		return ForceVAFile, nil
	case "exact", "seqscan":
		return ForceExact, nil
	case "mil":
		return ForceMIL, nil
	}
	return Auto, fmt.Errorf("plan: unknown strategy %q (want auto, bond, compressed, vafile, exact, or mil)", s)
}

// Spec is the single query description every search entry point reduces
// to: what to search for, how exact the answer must be, and optional
// hints. The zero value plus Query and K is a sensible default.
type Spec struct {
	// Query is the query vector. Required.
	Query []float64
	// K is the number of neighbors. Required, ≥ 1.
	K int
	// Criterion selects metric and pruning rule (core.Hq default).
	Criterion core.Criterion
	// Order selects the dimension processing order for BOND paths.
	Order core.Order
	// Seed drives core.OrderRandom.
	Seed int64
	// Step is the pruning granularity m (0 = default).
	Step int
	// AdaptiveStep and AdaptiveThreshold configure the dynamic-m variant.
	AdaptiveStep      bool
	AdaptiveThreshold float64
	// Weights enables weighted search; zero weights exclude dimensions.
	Weights []float64
	// Dims restricts the search to a dimensional subspace.
	Dims []int
	// Exclude removes vectors from consideration before the search starts.
	Exclude *bitmap.Bitmap
	// NormalizedData enables the stricter Eq constant bound.
	NormalizedData bool
	// DisableFutileSkip forces a pruning attempt after every step.
	DisableFutileSkip bool
	// SkipRangeCheck disables the data-range validation.
	SkipRangeCheck bool
	// BitmapSwitch configures the MIL path (0 = default).
	BitmapSwitch float64

	// Strategy forces an access path; Auto selects per segment by cost.
	Strategy Strategy
	// Parallel is the parallelism hint: ≥ 2 fans large segments out to
	// one goroutine each (every segment under ForceBOND, preserving the
	// legacy SearchParallel contract). 0 or 1 runs sequentially.
	Parallel int
	// Tolerance relaxes segment skipping: a segment that cannot improve
	// the running k-th best score by more than Tolerance is skipped even
	// though it might tie or marginally beat it. 0 keeps answers exact.
	Tolerance float64
	// Deadline stops the executor from starting further segments once
	// passed (zero = none). The merged answer over the segments searched
	// so far is returned with Plan.Truncated set.
	Deadline time.Time
}

// SpecFromOptions lifts a legacy core.Options into a Spec — the adapter
// the deprecated Search* wrappers go through.
func SpecFromOptions(q []float64, opts core.Options) Spec {
	return Spec{
		Query:             q,
		K:                 opts.K,
		Criterion:         opts.Criterion,
		Order:             opts.Order,
		Seed:              opts.Seed,
		Step:              opts.Step,
		AdaptiveStep:      opts.AdaptiveStep,
		AdaptiveThreshold: opts.AdaptiveThreshold,
		Weights:           opts.Weights,
		Dims:              opts.Dims,
		Exclude:           opts.Exclude,
		NormalizedData:    opts.NormalizedData,
		DisableFutileSkip: opts.DisableFutileSkip,
		SkipRangeCheck:    opts.SkipRangeCheck,
	}
}

// options lowers the spec onto the core engine options.
func (s Spec) options() core.Options {
	return core.Options{
		K:                 s.K,
		Criterion:         s.Criterion,
		Order:             s.Order,
		Seed:              s.Seed,
		Step:              s.Step,
		AdaptiveStep:      s.AdaptiveStep,
		AdaptiveThreshold: s.AdaptiveThreshold,
		Weights:           s.Weights,
		Dims:              s.Dims,
		Exclude:           s.Exclude,
		NormalizedData:    s.NormalizedData,
		DisableFutileSkip: s.DisableFutileSkip,
		SkipRangeCheck:    s.SkipRangeCheck,
	}
}

// Segment is one physical segment as the planner sees it: the engine view
// plus the access-path providers only sealed segments can offer. Codes
// and VA are invoked lazily, only when the executor actually runs that
// path on the segment, so skipped segments are never encoded.
type Segment struct {
	View core.SegmentView
	// Sealed marks immutable segments, the only ones whose codes may be
	// cached and therefore the only ones eligible for the compressed and
	// VA-File paths.
	Sealed bool
	// Codes returns the segment's 8-bit column codes (nil if unavailable).
	Codes func() *vstore.QuantStore
	// VA returns the segment's row-major VA-File (nil if unavailable).
	VA func() *vafile.File
	// Mapped marks a segment whose exact columns alias a read-only memory
	// mapping: the planner ranks it by the mapped time coefficients, and
	// the executor tags its feedback with the backing.
	Mapped bool
	// NoteScan, when set on a mapped segment, records one executed scan
	// and reports whether it was the segment's first since open — a cold
	// scan whose time is page-fault-dominated and excluded from feedback.
	NoteScan func() bool
}

// WrapViews lifts bare segment views into planner segments with no
// compressed access paths — all a snapshot offers.
func WrapViews(views []core.SegmentView) []Segment {
	out := make([]Segment, len(views))
	for i, v := range views {
		out[i] = Segment{View: v}
	}
	return out
}

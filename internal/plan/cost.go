package plan

import (
	"encoding/json"
	"runtime"
	"sync"
)

// CodeCost is the planner's cost of reading one 8-bit approximation cell,
// in units of one exact float64 coefficient read: an eighth of the
// bytes, matching the paper's byte ratio.
const CodeCost = 0.125

// ewmaAlpha is the feedback smoothing factor: each executed query moves a
// coefficient a fifth of the way toward the observed value, so the model
// adapts within a handful of queries without thrashing on one outlier.
const ewmaAlpha = 0.2

// Coefficients is the per-collection statistics block the planner predicts
// from and the executor feeds back into — persisted with the store so a
// reopened collection plans from its own history rather than the priors.
type Coefficients struct {
	// Queries counts executed queries that produced feedback.
	Queries int64 `json:"queries"`
	// BondFrac is the EWMA fraction of a segment's coefficients a BOND
	// scan reads before pruning stops (paper Section 7: ~30% on skewed
	// real data, approaching 1 on uniform data).
	BondFrac float64 `json:"bond_frac"`
	// ComprFilterFrac is the EWMA fraction of a segment's 8-bit cells the
	// compressed filter reads (its pruning loop skips cells too).
	ComprFilterFrac float64 `json:"compr_filter_frac"`
	// ComprSurvive is the EWMA fraction of a segment's vectors surviving
	// the compressed filter into exact refinement.
	ComprSurvive float64 `json:"compr_survive"`
	// VASurvive is the EWMA fraction surviving the VA-File filter.
	VASurvive float64 `json:"va_survive"`

	// Per-path EWMA wall time per coefficient-equivalent, in nanoseconds.
	// Cell counts predict I/O volume but miss per-path CPU structure (the
	// compressed filter pays a kfetch per pruning step, the VA-File scan
	// is a tight table loop), so the planner ranks paths by predicted
	// time = predicted cells × learned ns/cell. The priors are equal, so
	// a fresh collection ranks purely by cell count until feedback
	// arrives.
	BondNs  float64 `json:"bond_ns_per_cell"`
	ComprNs float64 `json:"compr_ns_per_cell"`
	VANs    float64 `json:"va_ns_per_cell"`
	ExactNs float64 `json:"exact_ns_per_cell"`

	// The same time coefficients for segments whose columns alias a memory
	// mapping instead of heap memory. Mapped reads cost the same CPU once
	// the pages are resident, but the page cache is not under the
	// collection's control, so the two backings learn separately and a
	// mapped segment is ranked by its own history. The very first scan of a
	// mapped segment after open (page faults dominate) is discarded rather
	// than averaged in — it would poison the steady-state coefficient with
	// a one-time cost.
	BondNsMapped  float64 `json:"bond_ns_per_cell_mapped,omitempty"`
	ComprNsMapped float64 `json:"compr_ns_per_cell_mapped,omitempty"`
	VANsMapped    float64 `json:"va_ns_per_cell_mapped,omitempty"`
	ExactNsMapped float64 `json:"exact_ns_per_cell_mapped,omitempty"`
}

// pathNs returns the learned time coefficient for one path on one segment
// backing.
func (c Coefficients) pathNs(p Path, mapped bool) float64 {
	if mapped {
		switch p {
		case PathBOND:
			return c.BondNsMapped
		case PathCompressed:
			return c.ComprNsMapped
		case PathVAFile:
			return c.VANsMapped
		default:
			return c.ExactNsMapped
		}
	}
	switch p {
	case PathBOND:
		return c.BondNs
	case PathCompressed:
		return c.ComprNs
	case PathVAFile:
		return c.VANs
	default:
		return c.ExactNs
	}
}

// defaultCoefficients are the priors a fresh collection plans from,
// anchored on the paper's measurements.
func defaultCoefficients() Coefficients {
	return Coefficients{
		BondFrac:        0.35,
		ComprFilterFrac: 0.60,
		ComprSurvive:    0.05,
		VASurvive:       0.03,
		BondNs:          defaultNsPerCell,
		ComprNs:         defaultNsPerCell,
		VANs:            defaultNsPerCell,
		ExactNs:         defaultNsPerCell,
		BondNsMapped:    defaultNsPerCell,
		ComprNsMapped:   defaultNsPerCell,
		VANsMapped:      defaultNsPerCell,
		ExactNsMapped:   defaultNsPerCell,
	}
}

// defaultNsPerCell is the prior per-cell time; its absolute value is
// irrelevant (only ratios rank paths), it just has to be equal across
// paths so a fresh model ranks by cell count.
const defaultNsPerCell = 3.0

// Model is the thread-safe holder of the coefficients. One Model belongs
// to one collection; queries read a snapshot when planning and feed
// observations back after executing. It also owns the collection's pools
// of reusable plans and executor scratch lanes — a small free list rather
// than a sync.Pool, so the buffers survive garbage collections and the
// steady-state allocation count stays deterministic.
type Model struct {
	mu sync.Mutex
	c  Coefficients

	poolMu    sync.Mutex
	plans     []*Plan
	scratches []*execScratch
}

// poolCap bounds each free list; lanes beyond it (a burst of concurrent
// queries wider than any since) are dropped to the garbage collector. It
// scales with the logical CPU count so QueryBatch's GOMAXPROCS-wide
// worker pool can park every lane between batches on large hosts.
func poolCap() int {
	if n := runtime.GOMAXPROCS(0); n > 16 {
		return n
	}
	return 16
}

func (m *Model) acquirePlan() *Plan {
	m.poolMu.Lock()
	defer m.poolMu.Unlock()
	if n := len(m.plans); n > 0 {
		p := m.plans[n-1]
		m.plans = m.plans[:n-1]
		return p
	}
	return &Plan{pooled: true}
}

func (m *Model) releasePlan(p *Plan) {
	m.poolMu.Lock()
	defer m.poolMu.Unlock()
	if len(m.plans) < poolCap() {
		m.plans = append(m.plans, p)
	}
}

func (m *Model) acquireScratch() *execScratch {
	m.poolMu.Lock()
	defer m.poolMu.Unlock()
	if n := len(m.scratches); n > 0 {
		sc := m.scratches[n-1]
		m.scratches = m.scratches[:n-1]
		// A pooled lane may carry a bound table built for another query;
		// make sure no step trusts it before this execution rebuilds it.
		sc.vaBuilt = false
		return sc
	}
	return &execScratch{}
}

func (m *Model) releaseScratch(sc *execScratch) {
	m.poolMu.Lock()
	defer m.poolMu.Unlock()
	if len(m.scratches) < poolCap() {
		m.scratches = append(m.scratches, sc)
	}
}

// observer is the feedback sink the executor reports into: the model
// directly, or a FeedbackBatch that aggregates a whole QueryBatch first.
// mapped tags which backing the time was observed on; the fraction
// observations are backing-neutral (pruning behaves the same either way)
// and always update the shared coefficients.
type observer interface {
	observeBond(frac, ns float64, mapped bool)
	observeCompressed(filterFrac, survive, ns float64, mapped bool)
	observeVA(survive, ns float64, mapped bool)
	observeExact(ns float64, mapped bool)
	countQuery()
}

// FeedbackBatch accumulates execution feedback across the queries of one
// batch and applies it to the model as a single aggregate observation per
// path — one EWMA step moved by the batch mean instead of Q small steps,
// so a batch adapts the model like one representative query would, at a
// fraction of the lock traffic.
type FeedbackBatch struct {
	mu      sync.Mutex
	queries int64
	// One slot per path and backing: heap observations in the first four,
	// mapped in the second four, so a mixed batch (some segments heap, some
	// mapped) lands each mean on the right coefficient.
	sums [8]pathSums
}

type pathSums struct {
	a, b, ns float64 // path-specific fraction sums plus ns-per-cell sum
	n, nsN   int64
}

const (
	fbBond = iota
	fbCompr
	fbVA
	fbExact
	fbMappedOff = 4
)

// NewFeedbackBatch returns an empty accumulator.
func NewFeedbackBatch() *FeedbackBatch { return &FeedbackBatch{} }

func (f *FeedbackBatch) add(slot int, a, b, ns float64, mapped bool) {
	if mapped {
		slot += fbMappedOff
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := &f.sums[slot]
	s.a += a
	s.b += b
	s.n++
	if ns > 0 {
		s.ns += ns
		s.nsN++
	}
}

func (f *FeedbackBatch) observeBond(frac, ns float64, mapped bool) {
	f.add(fbBond, frac, 0, ns, mapped)
}

func (f *FeedbackBatch) observeVA(survive, ns float64, mapped bool) {
	f.add(fbVA, survive, 0, ns, mapped)
}

func (f *FeedbackBatch) observeExact(ns float64, mapped bool) {
	f.add(fbExact, 0, 0, ns, mapped)
}

func (f *FeedbackBatch) countQuery() {
	f.mu.Lock()
	f.queries++
	f.mu.Unlock()
}

func (f *FeedbackBatch) observeCompressed(filterFrac, survive, ns float64, mapped bool) {
	f.add(fbCompr, filterFrac, survive, ns, mapped)
}

// Flush applies the accumulated batch means to the model. A path that saw
// no steps leaves its coefficients untouched.
func (f *FeedbackBatch) Flush(m *Model) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mean := func(s *pathSums) (a, b, ns float64, ok bool) {
		if s.n == 0 {
			return 0, 0, 0, false
		}
		a, b = s.a/float64(s.n), s.b/float64(s.n)
		if s.nsN > 0 {
			ns = s.ns / float64(s.nsN)
		}
		return a, b, ns, true
	}
	for _, mapped := range [2]bool{false, true} {
		off := 0
		if mapped {
			off = fbMappedOff
		}
		if a, _, ns, ok := mean(&f.sums[fbBond+off]); ok {
			m.observeBond(a, ns, mapped)
		}
		if a, b, ns, ok := mean(&f.sums[fbCompr+off]); ok {
			m.observeCompressed(a, b, ns, mapped)
		}
		if a, _, ns, ok := mean(&f.sums[fbVA+off]); ok {
			m.observeVA(a, ns, mapped)
		}
		if _, _, ns, ok := mean(&f.sums[fbExact+off]); ok && ns > 0 {
			m.observeExact(ns, mapped)
		}
	}
	m.mu.Lock()
	m.c.Queries += f.queries
	m.mu.Unlock()
	f.queries = 0
	f.sums = [8]pathSums{}
}

// NewModel returns a model at the default priors.
func NewModel() *Model {
	return &Model{c: defaultCoefficients()}
}

// LoadModel restores a model from a marshaled statistics block, falling
// back to the priors when the block is empty or unreadable (an old store
// file, or one written before the planner existed).
func LoadModel(b []byte) *Model {
	m := NewModel()
	if len(b) == 0 {
		return m
	}
	var c Coefficients
	if err := json.Unmarshal(b, &c); err != nil {
		return m
	}
	m.c = clampCoefficients(c)
	return m
}

// Marshal serializes the current coefficients for persistence.
func (m *Model) Marshal() []byte {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, err := json.Marshal(m.c)
	if err != nil {
		return nil
	}
	return b
}

// Snapshot returns the current coefficients.
func (m *Model) Snapshot() Coefficients {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c
}

func clampCoefficients(c Coefficients) Coefficients {
	c.BondFrac = clamp01(c.BondFrac)
	c.ComprFilterFrac = clamp01(c.ComprFilterFrac)
	c.ComprSurvive = clamp01(c.ComprSurvive)
	c.VASurvive = clamp01(c.VASurvive)
	c.BondNs = loadedNs(c.BondNs)
	c.ComprNs = loadedNs(c.ComprNs)
	c.VANs = loadedNs(c.VANs)
	c.ExactNs = loadedNs(c.ExactNs)
	c.BondNsMapped = loadedNs(c.BondNsMapped)
	c.ComprNsMapped = loadedNs(c.ComprNsMapped)
	c.VANsMapped = loadedNs(c.VANsMapped)
	c.ExactNsMapped = loadedNs(c.ExactNsMapped)
	if c.Queries < 0 {
		c.Queries = 0
	}
	return c
}

// loadedNs sanitizes a time coefficient read from a persisted statistics
// block. A live model never writes zero (every observation is clamped to
// ≥ 0.05), so zero means the field was absent — a block written before
// the coefficient existed. That must restore the prior, not clampNs's
// floor: 0.05 would make the planner rank the path as 60× faster than its
// peers on no evidence at all.
func loadedNs(x float64) float64 {
	if x == 0 {
		return defaultNsPerCell
	}
	return clampNs(x)
}

func clamp01(x float64) float64 {
	if x < 0.001 {
		return 0.001
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampNs(x float64) float64 {
	if x != x || x < 0.05 { // NaN or implausibly fast
		return 0.05
	}
	if x > 1e4 {
		return 1e4
	}
	return x
}

func ewma(old, obs float64) float64 {
	return clamp01(old + ewmaAlpha*(obs-old))
}

func ewmaNs(old, obs float64) float64 {
	return clampNs(old + ewmaAlpha*(clampNs(obs)-old))
}

// observeBond feeds back one BOND segment scan: frac is coefficients read
// over the segment's full size, already divided by the plan's shape
// factor so the stored coefficient stays shape-neutral; ns is the
// measured wall time per coefficient-equivalent (0 when unusable).
func (m *Model) observeBond(frac, ns float64, mapped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.BondFrac = ewma(m.c.BondFrac, frac)
	if ns > 0 {
		if mapped {
			m.c.BondNsMapped = ewmaNs(m.c.BondNsMapped, ns)
		} else {
			m.c.BondNs = ewmaNs(m.c.BondNs, ns)
		}
	}
}

func (m *Model) observeCompressed(filterFrac, survive, ns float64, mapped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.ComprFilterFrac = ewma(m.c.ComprFilterFrac, filterFrac)
	m.c.ComprSurvive = ewma(m.c.ComprSurvive, survive)
	if ns > 0 {
		if mapped {
			m.c.ComprNsMapped = ewmaNs(m.c.ComprNsMapped, ns)
		} else {
			m.c.ComprNs = ewmaNs(m.c.ComprNs, ns)
		}
	}
}

func (m *Model) observeVA(survive, ns float64, mapped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.VASurvive = ewma(m.c.VASurvive, survive)
	if ns > 0 {
		if mapped {
			m.c.VANsMapped = ewmaNs(m.c.VANsMapped, ns)
		} else {
			m.c.VANs = ewmaNs(m.c.VANs, ns)
		}
	}
}

func (m *Model) observeExact(ns float64, mapped bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ns > 0 {
		if mapped {
			m.c.ExactNsMapped = ewmaNs(m.c.ExactNsMapped, ns)
		} else {
			m.c.ExactNs = ewmaNs(m.c.ExactNs, ns)
		}
	}
}

func (m *Model) countQuery() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.c.Queries++
}

// DecayForRewrite discounts the learned coefficients after a structural
// rewrite (compaction, re-clustering) destroyed the segments the feedback
// was observed on: every EWMA coefficient is blended toward its prior in
// proportion to frac, the fraction of the collection's live vectors the
// rewrite moved. frac 1 (a full re-layout, e.g. a recluster of an
// all-sealed collection) resets to the priors; frac 0 is a no-op; the
// query count is kept — it measures history, not layout. Without the
// decay, costs learned on the old layout (say, BondFrac ≈ 1 from loose
// pre-recluster synopses) would keep steering the planner on a layout
// where they no longer hold.
func (m *Model) DecayForRewrite(frac float64) {
	if frac <= 0 {
		return
	}
	if frac > 1 {
		frac = 1
	}
	p := defaultCoefficients()
	m.mu.Lock()
	defer m.mu.Unlock()
	blend := func(old, prior float64) float64 { return old + frac*(prior-old) }
	m.c.BondFrac = clamp01(blend(m.c.BondFrac, p.BondFrac))
	m.c.ComprFilterFrac = clamp01(blend(m.c.ComprFilterFrac, p.ComprFilterFrac))
	m.c.ComprSurvive = clamp01(blend(m.c.ComprSurvive, p.ComprSurvive))
	m.c.VASurvive = clamp01(blend(m.c.VASurvive, p.VASurvive))
	m.c.BondNs = clampNs(blend(m.c.BondNs, p.BondNs))
	m.c.ComprNs = clampNs(blend(m.c.ComprNs, p.ComprNs))
	m.c.VANs = clampNs(blend(m.c.VANs, p.VANs))
	m.c.ExactNs = clampNs(blend(m.c.ExactNs, p.ExactNs))
	m.c.BondNsMapped = clampNs(blend(m.c.BondNsMapped, p.BondNsMapped))
	m.c.ComprNsMapped = clampNs(blend(m.c.ComprNsMapped, p.ComprNsMapped))
	m.c.VANsMapped = clampNs(blend(m.c.VANsMapped, p.VANsMapped))
	m.c.ExactNsMapped = clampNs(blend(m.c.ExactNsMapped, p.ExactNsMapped))
}

// --- Predictions ----------------------------------------------------------
//
// All predictions are in coefficient-equivalents: the number of exact
// float64 reads a path is expected to cost on one segment, with 8-bit
// cell reads charged at CodeCost. The executor reports actual costs in
// the same unit, which is what EXPLAIN prints side by side.

// predictBond estimates a BOND scan over a segment of n vectors and dims
// dimensions, scaled by the segment's shape factor (see shapeFactor).
func (c Coefficients) predictBond(n, dims int, shape float64) float64 {
	return float64(n) * float64(dims) * c.BondFrac * shape
}

func (c Coefficients) predictCompressed(n, dims int) float64 {
	nd := float64(n) * float64(dims)
	return CodeCost*nd*c.ComprFilterFrac + nd*c.ComprSurvive
}

func (c Coefficients) predictVAFile(n, dims int) float64 {
	nd := float64(n) * float64(dims)
	return CodeCost*nd + nd*c.VASurvive
}

func (c Coefficients) predictExact(n, dims int) float64 {
	return float64(n) * float64(dims)
}

// shapeFactor scales the BOND cost prediction by how well branch-and-bound
// should prune on this particular segment, derived from its synopsis
// bound — the planner's per-segment differentiation that the global EWMA
// cannot provide.
//
// For similarity criteria the bound is the best intersection any member
// could reach: a segment whose bound is far below the query mass T(q)
// prunes almost immediately, so the factor is bound/T(q) in (0, 1]. For
// distance criteria the bound is the minimum possible distance to the
// segment's bounding box: the farther the query sits from the box, the
// faster candidates die, so the factor decays as 1/(1+bound). Segments
// without a synopsis get factor 1 (no information, assume the average).
func shapeFactor(bound float64, hasBound, distance bool, queryMass float64) float64 {
	if !hasBound {
		return 1
	}
	if distance {
		return 1 / (1 + bound)
	}
	if queryMass <= 0 {
		return 1
	}
	f := bound / queryMass
	if f < 0.05 {
		f = 0.05
	}
	if f > 1 {
		f = 1
	}
	return f
}

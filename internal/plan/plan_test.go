package plan

import (
	"math/rand"
	"testing"
	"time"

	"bond/internal/core"
	"bond/internal/quant"
	"bond/internal/vafile"
	"bond/internal/vstore"
)

// segmentsOf lifts a segmented store into planner segments the same way
// the collection layer does.
func segmentsOf(s *vstore.SegStore) []Segment {
	segs, bases := s.Segments(), s.Bases()
	out := make([]Segment, len(segs))
	for i, g := range segs {
		out[i] = Segment{
			View:   core.SegmentView{Src: g, Base: bases[i], DimRange: g.DimRange},
			Sealed: g.Sealed(),
		}
		if g.Sealed() {
			g := g
			out[i].Codes = func() *vstore.QuantStore { return g.Codes(quant.NewUnit()) }
			out[i].VA = func() *vafile.File {
				qz, codes := g.RowCodes(quant.NewUnit())
				return vafile.FromRowCodes(qz, g.Len(), g.Dims(), codes)
			}
		}
	}
	return out
}

// clusterContiguous builds nSeg segments of segLen vectors each, every
// segment a tight cluster around its own center — the layout where
// synopsis skipping shines.
func clusterContiguous(nSeg, segLen, dims int, seed int64) *vstore.SegStore {
	rng := rand.New(rand.NewSource(seed))
	var vectors [][]float64
	for s := 0; s < nSeg; s++ {
		center := make([]float64, dims)
		for d := range center {
			center[d] = rng.Float64()
		}
		for i := 0; i < segLen; i++ {
			v := make([]float64, dims)
			for d := range v {
				x := center[d] + 0.02*(rng.Float64()-0.5)
				if x < 0 {
					x = 0
				}
				if x > 1 {
					x = 1
				}
				v[d] = x
			}
			vectors = append(vectors, v)
		}
	}
	return vstore.SegmentedFromVectors(vectors, segLen)
}

func uniformStore(n, segLen, dims int, seed int64) *vstore.SegStore {
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]float64, n)
	for i := range vectors {
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}
	return vstore.SegmentedFromVectors(vectors, segLen)
}

// skewedStore concentrates mass on the low dimensions (Zipf-like), the
// data shape BOND prunes best on.
func skewedStore(n, segLen, dims int, seed int64) *vstore.SegStore {
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]float64, n)
	for i := range vectors {
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64() / float64(1+d)
		}
		vectors[i] = v
	}
	return vstore.SegmentedFromVectors(vectors, segLen)
}

func TestForcedStrategyPaths(t *testing.T) {
	s := uniformStore(300, 100, 8, 1)
	s.Append(make([]float64, 8)) // unsealed active segment
	segs := segmentsOf(s)
	q := s.Row(5)

	cases := []struct {
		strat  Strategy
		sealed Path
		active Path
	}{
		{ForceBOND, PathBOND, PathBOND},
		{ForceCompressed, PathCompressed, PathExact},
		{ForceVAFile, PathVAFile, PathExact},
		{ForceExact, PathExact, PathExact},
		{ForceMIL, PathMIL, PathMIL},
	}
	for _, tc := range cases {
		p, err := New(segs, Spec{Query: q, K: 3, Strategy: tc.strat}, nil)
		if err != nil {
			t.Fatalf("%v: %v", tc.strat, err)
		}
		for _, st := range p.Steps {
			want := tc.sealed
			if !st.Sealed {
				want = tc.active
			}
			if st.Path != want {
				t.Errorf("%v: segment %d (sealed=%v) got path %v, want %v",
					tc.strat, st.Segment, st.Sealed, st.Path, want)
			}
		}
	}
}

func TestCompressedStrategyRejectsUnsupportedOptions(t *testing.T) {
	s := uniformStore(200, 100, 8, 2)
	q := s.Row(0)
	w := make([]float64, 8)
	for d := range w {
		w[d] = 1
	}
	if _, err := New(segmentsOf(s), Spec{Query: q, K: 3, Strategy: ForceCompressed, Weights: w}, nil); err == nil {
		t.Fatal("weighted compressed plan should be rejected")
	}
	if _, err := New(segmentsOf(s), Spec{Query: q, K: 3, Strategy: ForceVAFile, Criterion: core.Hh}, nil); err == nil {
		t.Fatal("Hh VA-File plan should be rejected")
	}
	if _, err := New(segmentsOf(s), Spec{Query: q, K: 3, Strategy: ForceMIL, Criterion: core.Eq}, nil); err == nil {
		t.Fatal("Eq MIL plan should be rejected")
	}
}

// TestAutoShapeFactorDifferentiates checks the planner's per-segment
// choice: under a distance criterion, a segment whose bounding box is far
// from the query predicts cheap BOND (branch-and-bound kills candidates
// immediately), while the segment containing the query has no such help
// and the filter paths win.
func TestAutoShapeFactorDifferentiates(t *testing.T) {
	s := clusterContiguous(4, 150, 32, 3)
	segs := segmentsOf(s)
	q := s.Row(0) // inside segment 0's cluster
	p, err := New(segs, Spec{Query: q, K: 3, Criterion: core.Eq}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var home, away *Step
	for i := range p.Steps {
		if p.Steps[i].Segment == 0 {
			home = &p.Steps[i]
		} else if away == nil {
			away = &p.Steps[i]
		}
	}
	if home == nil || away == nil {
		t.Fatal("missing steps")
	}
	if home.Path == PathBOND {
		t.Errorf("home segment should prefer a filter path, got %v (pred %.1f)", home.Path, home.PredCost)
	}
	if away.Path != PathBOND {
		t.Errorf("far segment should prefer BOND, got %v (pred %.1f)", away.Path, away.PredCost)
	}
	if away.PredCost >= home.PredCost {
		t.Errorf("far segment predicted %.1f, home %.1f: want far < home", away.PredCost, home.PredCost)
	}
}

func TestExecuteMatchesExactScan(t *testing.T) {
	s := clusterContiguous(5, 120, 10, 4)
	segs := segmentsOf(s)
	q := s.Row(37)
	for _, strat := range []Strategy{Auto, ForceBOND, ForceCompressed, ForceVAFile, ForceExact, ForceMIL} {
		for _, crit := range []core.Criterion{core.Hq, core.Eq} {
			if strat == ForceMIL && crit != core.Hq {
				continue
			}
			oracle, err := New(segs, Spec{Query: q, K: 7, Criterion: crit, Strategy: ForceExact}, nil)
			if err != nil {
				t.Fatal(err)
			}
			want, err := Execute(oracle)
			if err != nil {
				t.Fatal(err)
			}
			p, err := New(segs, Spec{Query: q, K: 7, Criterion: crit, Strategy: strat}, NewModel())
			if err != nil {
				t.Fatalf("%v/%v: %v", strat, crit, err)
			}
			got, err := Execute(p)
			if err != nil {
				t.Fatalf("%v/%v: %v", strat, crit, err)
			}
			if len(got.Results) != len(want.Results) {
				t.Fatalf("%v/%v: %d results, want %d", strat, crit, len(got.Results), len(want.Results))
			}
			for i := range want.Results {
				if got.Results[i].ID != want.Results[i].ID {
					t.Fatalf("%v/%v rank %d: id %d, want %d", strat, crit, i,
						got.Results[i].ID, want.Results[i].ID)
				}
				if diff := got.Results[i].Score - want.Results[i].Score; diff > 1e-9 || diff < -1e-9 {
					t.Fatalf("%v/%v rank %d: score %v, want %v", strat, crit, i,
						got.Results[i].Score, want.Results[i].Score)
				}
			}
		}
	}
}

func TestFeedbackAdaptsModel(t *testing.T) {
	s := uniformStore(600, 200, 12, 5)
	segs := segmentsOf(s)
	m := NewModel()
	before := m.Snapshot()
	for i := 0; i < 5; i++ {
		p, err := New(segs, Spec{Query: s.Row(i), K: 5, Strategy: ForceBOND}, m)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := Execute(p); err != nil {
			t.Fatal(err)
		}
	}
	after := m.Snapshot()
	if after.Queries != 5 {
		t.Fatalf("queries = %d, want 5", after.Queries)
	}
	// Uniform data prunes poorly: the observed BOND fraction must have
	// pulled the coefficient up from the 0.35 prior.
	if after.BondFrac <= before.BondFrac {
		t.Fatalf("BondFrac %v did not rise from prior %v on uniform data", after.BondFrac, before.BondFrac)
	}
}

func TestDecayForRewriteBlendsTowardPriors(t *testing.T) {
	m := NewModel()
	for i := 0; i < 50; i++ {
		m.observeBond(1.0, 9.0, false) // a layout where BOND pruning never fires
		m.countQuery()
	}
	learned := m.Snapshot()
	p := defaultCoefficients()

	m.DecayForRewrite(0) // no-op
	if m.Snapshot() != learned {
		t.Fatal("frac 0 must not move the model")
	}

	m.DecayForRewrite(0.5)
	half := m.Snapshot()
	wantFrac := learned.BondFrac + 0.5*(p.BondFrac-learned.BondFrac)
	if diff := half.BondFrac - wantFrac; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("half decay BondFrac = %v, want %v", half.BondFrac, wantFrac)
	}
	if half.Queries != learned.Queries {
		t.Fatalf("decay changed query count %d → %d", learned.Queries, half.Queries)
	}

	m.DecayForRewrite(1) // full rewrite: back to the priors
	full := m.Snapshot()
	full.Queries = 0
	if full != p {
		t.Fatalf("full decay = %+v, want priors %+v", full, p)
	}
}

func TestModelPersistenceRoundTrip(t *testing.T) {
	m := NewModel()
	m.observeBond(0.9, 2.5, false)
	m.observeCompressed(0.4, 0.2, 7.5, false)
	m.countQuery()
	got := LoadModel(m.Marshal()).Snapshot()
	if got != m.Snapshot() {
		t.Fatalf("round trip: got %+v, want %+v", got, m.Snapshot())
	}
	if LoadModel(nil).Snapshot() != defaultCoefficients() {
		t.Fatal("empty block should load the priors")
	}
	if LoadModel([]byte("not json")).Snapshot() != defaultCoefficients() {
		t.Fatal("garbage block should load the priors")
	}
}

func TestDeadlineTruncates(t *testing.T) {
	s := uniformStore(400, 100, 8, 6)
	segs := segmentsOf(s)
	p, err := New(segs, Spec{
		Query:    s.Row(0),
		K:        3,
		Deadline: time.Now().Add(-time.Second),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("expired deadline should truncate")
	}
	if len(res.Results) != 0 {
		t.Fatalf("no segment ran, yet %d results", len(res.Results))
	}

	// The same contract holds when every step is in the parallel group.
	pp, err := New(segs, Spec{
		Query:    s.Row(0),
		K:        3,
		Strategy: ForceBOND,
		Parallel: 4,
		Deadline: time.Now().Add(-time.Second),
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := Execute(pp)
	if err != nil {
		t.Fatalf("all-parallel expired deadline should truncate, not error: %v", err)
	}
	if !pres.Truncated || len(pres.Results) != 0 {
		t.Fatalf("all-parallel truncation: truncated=%v results=%d", pres.Truncated, len(pres.Results))
	}
}

func TestToleranceSkipsMarginalSegments(t *testing.T) {
	// Uniform data: every segment's synopsis bound clears κ, so exact
	// skipping dismisses nothing — only the tolerance can.
	s := uniformStore(600, 100, 8, 7)
	segs := segmentsOf(s)
	q := s.Row(0)
	exact, err := New(segs, Spec{Query: q, K: 3, Strategy: ForceBOND}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(exact); err != nil {
		t.Fatal(err)
	}
	loose, err := New(segs, Spec{Query: q, K: 3, Strategy: ForceBOND, Tolerance: 100}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(loose)
	if err != nil {
		t.Fatal(err)
	}
	skippedExact := countSkipped(exact)
	skippedLoose := countSkipped(loose)
	if skippedLoose <= skippedExact {
		t.Fatalf("tolerance 100 skipped %d segments, exact skipped %d: want more", skippedLoose, skippedExact)
	}
	if len(res.Results) == 0 {
		t.Fatal("approximate search returned nothing")
	}
}

func countSkipped(p *Plan) int {
	n := 0
	for i := range p.Steps {
		if p.Steps[i].Skipped {
			n++
		}
	}
	return n
}

package plan

// ModelStats is the serializable view of one collection's adaptive cost
// model: the learned coefficients the planner predicts from (the same
// block Save persists) plus gauges over the model's pooled execution
// lanes. A serving layer exposes it on its stats endpoint so
// predicted-vs-actual drift and pool pressure are observable without
// attaching a debugger.
type ModelStats struct {
	Coefficients
	// PooledPlans and PooledScratch count the plans and executor scratch
	// lanes currently parked on the model's free lists — lanes in flight
	// are checked out, so a busy server shows these dip toward zero.
	PooledPlans   int `json:"pooled_plans"`
	PooledScratch int `json:"pooled_scratch"`
}

// Stats returns the serializable view of the model's current state.
func (m *Model) Stats() ModelStats {
	s := ModelStats{Coefficients: m.Snapshot()}
	m.poolMu.Lock()
	s.PooledPlans = len(m.plans)
	s.PooledScratch = len(m.scratches)
	m.poolMu.Unlock()
	return s
}

package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeRoundTripCell(t *testing.T) {
	q := NewUnit()
	for _, x := range []float64{0, 0.1, 0.5, 0.999, 1} {
		c := q.Encode(x)
		if x < q.CellLower(c)-1e-12 || x > q.CellUpper(c)+1e-12 {
			t.Errorf("x=%v not inside its cell [%v, %v]", x, q.CellLower(c), q.CellUpper(c))
		}
	}
}

func TestEncodeClampsOutOfRange(t *testing.T) {
	q := NewUnit()
	if q.Encode(-0.5) != 0 {
		t.Error("below-range value must clamp to code 0")
	}
	if q.Encode(2.0) != 255 {
		t.Error("above-range value must clamp to code 255")
	}
}

func TestCellGeometry(t *testing.T) {
	q := New(0, 1, 4) // cells of width 0.25
	if q.Delta() != 0.25 {
		t.Fatalf("Delta = %v", q.Delta())
	}
	if q.CellLower(2) != 0.5 || q.CellUpper(2) != 0.75 || q.CellMid(2) != 0.625 {
		t.Errorf("cell 2 geometry: [%v, %v] mid %v", q.CellLower(2), q.CellUpper(2), q.CellMid(2))
	}
}

func TestNewPanics(t *testing.T) {
	for _, f := range []func(){
		func() { New(1, 1, 8) },
		func() { New(0, 1, 1) },
		func() { New(0, 1, 257) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestEncodeColumn(t *testing.T) {
	q := New(0, 1, 4)
	got := q.EncodeColumn([]float64{0.1, 0.3, 0.6, 0.9})
	want := []uint8{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("code[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestMinIntersectBoundsHandCase(t *testing.T) {
	q := New(0, 1, 4)
	// Cell 1 = [0.25, 0.5). qv = 0.4: true min(h, 0.4) ∈ [0.25, 0.4].
	lo, hi := q.MinIntersectBounds(1, 0.4)
	if lo != 0.25 || hi != 0.4 {
		t.Errorf("bounds = [%v, %v], want [0.25, 0.4]", lo, hi)
	}
	// qv = 0.2 below the cell: min is always 0.2.
	lo, hi = q.MinIntersectBounds(1, 0.2)
	if lo != 0.2 || hi != 0.2 {
		t.Errorf("bounds = [%v, %v], want [0.2, 0.2]", lo, hi)
	}
}

func TestSqDistBoundsHandCases(t *testing.T) {
	q := New(0, 1, 4)
	// Cell 1 = [0.25, 0.5). qv inside: lower bound 0, upper to far edge.
	lo, hi := q.SqDistBounds(1, 0.3)
	if lo != 0 {
		t.Errorf("lo = %v, want 0 (qv inside cell)", lo)
	}
	if want := 0.2 * 0.2; math.Abs(hi-want) > 1e-12 {
		t.Errorf("hi = %v, want %v", hi, want)
	}
	// qv left of the cell.
	lo, hi = q.SqDistBounds(1, 0.1)
	if want := 0.15 * 0.15; math.Abs(lo-want) > 1e-12 {
		t.Errorf("lo = %v, want %v", lo, want)
	}
	if want := 0.4 * 0.4; math.Abs(hi-want) > 1e-12 {
		t.Errorf("hi = %v, want %v", hi, want)
	}
	// qv right of the cell.
	lo, _ = q.SqDistBounds(1, 0.9)
	if want := 0.4 * 0.4; math.Abs(lo-want) > 1e-12 {
		t.Errorf("lo = %v, want %v", lo, want)
	}
}

// Property: for random values, the true per-dimension contributions always
// lie within the quantized bounds — the no-false-dismissal invariant that
// both compressed BOND and the VA-File rely on.
func TestBoundsBracketTruth(t *testing.T) {
	q := NewUnit()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			x := rng.Float64()
			qv := rng.Float64()
			c := q.Encode(x)

			lo, hi := q.MinIntersectBounds(c, qv)
			truth := math.Min(x, qv)
			if truth < lo-1e-12 || truth > hi+1e-12 {
				return false
			}

			dlo, dhi := q.SqDistBounds(c, qv)
			dist := (x - qv) * (x - qv)
			if dist < dlo-1e-12 || dist > dhi+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: reconstruction error of the midpoint is at most Δ/2.
func TestMidpointErrorBounded(t *testing.T) {
	q := NewUnit()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := rng.Float64()
		c := q.Encode(x)
		return math.Abs(q.CellMid(c)-x) <= q.Delta()/2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

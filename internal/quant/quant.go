// Package quant implements uniform scalar quantization of vector
// coefficients to small fixed-width codes.
//
// The paper uses "an 8-bit approximation of each double coefficient per
// dimension" both for compressed BOND fragments (Section 7.4, Figure 9) and
// for the VA-File comparator [22] (Table 4). A code c represents the cell
// [c·Δ, (c+1)·Δ): every exact value quantized to c lies inside the cell, so
// the cell edges give per-value lower and upper bounds that keep pruning
// and filtering conservative (no false dismissals).
package quant

import (
	"fmt"
	"math"
)

// Quantizer maps values from [Lo, Hi] onto {0, …, Levels−1} codes.
type Quantizer struct {
	Lo, Hi float64
	Levels int
	delta  float64
}

// New returns a quantizer over [lo, hi] with the given number of levels.
// It panics if hi ≤ lo or levels < 2 or levels > 256 (codes must fit a byte).
func New(lo, hi float64, levels int) *Quantizer {
	if hi <= lo {
		panic(fmt.Sprintf("quant: invalid range [%v, %v]", lo, hi))
	}
	if levels < 2 || levels > 256 {
		panic(fmt.Sprintf("quant: levels %d outside [2, 256]", levels))
	}
	return &Quantizer{Lo: lo, Hi: hi, Levels: levels, delta: (hi - lo) / float64(levels)}
}

// NewUnit returns the paper's default: 256 levels over [0, 1].
func NewUnit() *Quantizer { return New(0, 1, 256) }

// Delta returns the cell width.
func (q *Quantizer) Delta() float64 { return q.delta }

// Encode returns the code of value x. Values outside [Lo, Hi] clamp to the
// boundary cells.
func (q *Quantizer) Encode(x float64) uint8 {
	c := int(math.Floor((x - q.Lo) / q.delta))
	if c < 0 {
		c = 0
	}
	if c >= q.Levels {
		c = q.Levels - 1
	}
	return uint8(c)
}

// CellLower returns the smallest value in code c's cell.
func (q *Quantizer) CellLower(c uint8) float64 {
	return q.Lo + float64(c)*q.delta
}

// CellUpper returns the largest value in code c's cell.
func (q *Quantizer) CellUpper(c uint8) float64 {
	return q.Lo + (float64(c)+1)*q.delta
}

// CellMid returns the cell's midpoint, the best single-value reconstruction.
func (q *Quantizer) CellMid(c uint8) float64 {
	return q.Lo + (float64(c)+0.5)*q.delta
}

// EncodeColumn quantizes a whole column.
func (q *Quantizer) EncodeColumn(xs []float64) []uint8 {
	out := make([]uint8, len(xs))
	for i, x := range xs {
		out[i] = q.Encode(x)
	}
	return out
}

// MinIntersectBounds returns conservative bounds on min(h, qv) when only
// h's cell code is known: the true contribution lies in
// [min(cellLower, qv), min(cellUpper, qv)].
func (q *Quantizer) MinIntersectBounds(c uint8, qv float64) (lo, hi float64) {
	return math.Min(q.CellLower(c), qv), math.Min(q.CellUpper(c), qv)
}

// SqDistBounds returns conservative bounds on (v−qv)² when only v's cell
// code is known. If qv falls inside the cell the lower bound is zero;
// otherwise it is the squared distance to the nearer edge. The upper bound
// is the squared distance to the farther edge.
func (q *Quantizer) SqDistBounds(c uint8, qv float64) (lo, hi float64) {
	l, u := q.CellLower(c), q.CellUpper(c)
	switch {
	case qv < l:
		lo = (l - qv) * (l - qv)
	case qv > u:
		lo = (qv - u) * (qv - u)
	default:
		lo = 0
	}
	dl := qv - l
	du := u - qv
	if dl < 0 {
		dl = -dl
	}
	if du < 0 {
		du = -du
	}
	m := math.Max(dl, du)
	return lo, m * m
}

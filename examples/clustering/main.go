// Clustering: exact k-means over a decomposed collection — the paper's
// Section 9 future-work direction, realized with BOND-style branch-and-
// bound pruning in the assignment step.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"bond"
	"bond/internal/dataset"
)

func main() {
	const (
		n    = 5000
		dims = 64
		k    = 12
	)
	// Data with 12 planted clusters.
	cfg := dataset.DefaultClustered(n, dims, 0.8, 11)
	cfg.Clusters = k
	vectors := dataset.Clustered(cfg)
	col := bond.NewCollection(vectors)

	res, err := col.Cluster(bond.ClusterOptions{K: k, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-means: %d clusters, %d iterations, inertia %.2f\n",
		len(res.Centers), res.Iters, res.Inertia)

	sizes := make([]int, k)
	for _, c := range res.Assignments {
		if c >= 0 {
			sizes[c]++
		}
	}
	fmt.Println("cluster sizes:")
	for c, s := range sizes {
		fmt.Printf("  cluster %2d: %d points\n", c, s)
	}

	naive := int64(n * dims * k * res.Iters)
	fmt.Printf("\nassignment work: %d point-centre cell reads (naive would need %d, saved %.0f%%)\n",
		res.ValuesScanned, naive, 100*(1-float64(res.ValuesScanned)/float64(naive)))

	// The usefulness measure predicts which queries will prune well on
	// this collection (Section 9's query-quality proposal).
	skewed := col.Vector(0)
	uniform := make([]float64, dims)
	for i := range uniform {
		uniform[i] = 0.5
	}
	fmt.Printf("\nquery usefulness: data vector %.3f, uniform vector %.3f\n",
		bond.QueryUsefulness(skewed, nil, bond.Ev),
		bond.QueryUsefulness(uniform, nil, bond.Ev))
}

// Quickstart: build a collection, search it, inspect the pruning.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bond"
	"bond/internal/dataset"
)

func main() {
	// 10,000 synthetic 64-bin color histograms (bring your own [][]float64
	// in a real application — anything non-negative works; normalize each
	// vector to sum 1 for the histogram-intersection criteria).
	vectors := dataset.CorelLike(10000, 64, 1)
	col := bond.NewCollection(vectors)

	// Query by example: find the 10 histograms most similar to vector 123.
	query := col.Vector(123)
	res, err := col.Search(query, bond.Options{K: 10, Criterion: bond.Hq})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top 10 by histogram intersection:")
	for rank, r := range res.Results {
		fmt.Printf("%3d. id=%-6d similarity=%.4f\n", rank+1, r.ID, r.Score)
	}

	// BOND read a fraction of what a sequential scan would. The collection
	// is stored as sealed segments plus one active segment; segments whose
	// min/max synopsis proves them hopeless are skipped without a read.
	full := int64(col.Live() * col.Dims())
	fmt.Printf("\nwork: %d of %d values (%.1f%% of a full scan)\n",
		res.Stats.ValuesScanned, full, 100*float64(res.Stats.ValuesScanned)/float64(full))
	fmt.Printf("segments: %d total, %d searched, %d skipped by synopsis\n",
		col.NumSegments(), res.Stats.SegmentsSearched, res.Stats.SegmentsSkipped)
	fmt.Println("candidate set after each pruning step (per segment):")
	for _, st := range res.Stats.Steps {
		fmt.Printf("  seg %d, %3d dims -> %d candidates\n", st.Segment, st.DimsProcessed, st.Candidates)
	}

	// The same collection answers Euclidean queries too.
	resE, err := col.Search(query, bond.Options{K: 3, Criterion: bond.Ev})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop 3 by squared Euclidean distance:")
	for rank, r := range resE.Results {
		fmt.Printf("%3d. id=%-6d distance=%.6f\n", rank+1, r.ID, r.Score)
	}
}

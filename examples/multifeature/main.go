// Multifeature: complex queries across several feature collections
// (Section 8.2 of the paper) — "images similar to A in color AND similar
// to A in texture", with the global score a weighted average or a
// fuzzy-logic min of the per-feature similarities.
//
// Run with: go run ./examples/multifeature
package main

import (
	"fmt"
	"log"
	"time"

	"bond"
	"bond/internal/dataset"
)

func main() {
	const (
		nImages = 10000
		k       = 10
	)
	// Two feature spaces over the same image set: 64-d "color" and 128-d
	// "texture" (clustered synthetic data standing in for real extractors).
	color := dataset.Clustered(dataset.DefaultClustered(nImages, 64, 1.0, 5))
	dataset.NormalizeAll(color)
	texture := dataset.Clustered(dataset.DefaultClustered(nImages, 128, 1.0, 6))
	dataset.NormalizeAll(texture)

	colorCol := bond.NewCollection(color)
	textureCol := bond.NewCollection(texture)

	const example = 2024
	features := []bond.Feature{
		colorCol.AsFeature(colorCol.Vector(example), 0.7), // color matters more
		textureCol.AsFeature(textureCol.Vector(example), 0.3),
	}

	// Weighted-average aggregate.
	start := time.Now()
	res, err := bond.MultiSearch(features, bond.MultiOptions{K: k, Agg: bond.WeightedAvg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted-average aggregate (%v):\n", time.Since(start))
	printTop(res, 5)

	// Fuzzy conjunction: similar in color AND texture — the min aggregate.
	start = time.Now()
	resMin, err := bond.MultiSearch(features, bond.MultiOptions{K: k, Agg: bond.MinAgg})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmin (fuzzy-AND) aggregate (%v):\n", time.Since(start))
	printTop(resMin, 5)

	full := int64(nImages * (64 + 128))
	fmt.Printf("\nsynchronized search scanned %d of %d values (%.1f%% of both collections)\n",
		res.Stats.ValuesScanned, full, 100*float64(res.Stats.ValuesScanned)/float64(full))
}

func printTop(res bond.MultiResult, n int) {
	for rank, r := range res.Results {
		if rank == n {
			break
		}
		fmt.Printf("  %2d. image %-6d global score %.4f\n", rank+1, r.ID, r.Score)
	}
}

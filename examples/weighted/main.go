// Weighted: weighted and subspace k-NN queries (Section 8.1 of the paper).
//
// A relevance-feedback loop in image retrieval re-weights dimensions after
// each round; BOND answers the re-weighted query on the same single data
// representation, reading only the columns that matter.
//
// Run with: go run ./examples/weighted
package main

import (
	"fmt"
	"log"

	"bond"
	"bond/internal/dataset"
)

func main() {
	const (
		n    = 15000
		dims = 128
		k    = 5
	)
	vectors := dataset.Clustered(dataset.DefaultClustered(n, dims, 1.0, 3))
	col := bond.NewCollection(vectors)
	query := col.Vector(99)

	// Round 0: plain Euclidean search.
	res, err := col.Search(query, bond.Options{K: k, Criterion: bond.Ev})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("unweighted nearest neighbors:")
	print5(res)

	// Round 1: the user marked a few dimensions as important; relevance
	// feedback concentrates 90 % of the weight on 10 % of the dimensions.
	weights := dataset.WeightsZipf(dims, 3.0, 17)
	wres, err := col.Search(query, bond.Options{K: k, Criterion: bond.Ev, Weights: weights})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith skewed feedback weights:")
	print5(wres)
	fmt.Printf("weighted search scanned %d values vs %d unweighted\n",
		wres.Stats.ValuesScanned, res.Stats.ValuesScanned)

	// Round 2: a subspace query — only 8 named dimensions matter. BOND
	// never touches the other 120 columns.
	sub := []int{0, 5, 17, 23, 42, 77, 101, 120}
	sres, err := col.Search(query, bond.Options{K: k, Criterion: bond.Ev, Dims: sub})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsubspace query over %d of %d dimensions:\n", len(sub), dims)
	print5(sres)
	fmt.Printf("subspace search scanned %d values (max possible %d)\n",
		sres.Stats.ValuesScanned, len(sub)*n)
}

func print5(res bond.Result) {
	for rank, r := range res.Results {
		fmt.Printf("  %2d. id=%-6d distance=%.6f\n", rank+1, r.ID, r.Score)
	}
}

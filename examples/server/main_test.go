package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"bond/internal/server"
)

// TestDemoAgainstHTTPTestServer runs the example's full client flow
// against an in-process bondd handler, which is how `go test ./...`
// keeps the example honest without binding a port.
func TestDemoAgainstHTTPTestServer(t *testing.T) {
	s, err := server.New(server.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("Close: %v", err)
		}
	}()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var out strings.Builder
	if err := demo(ts.URL, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"ingested 400 vectors starting at id 0",
		"batch answered 3 queries",
		"Query: k=10 criterion=Eq",
		"Total:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("demo output missing %q:\n%s", want, got)
		}
	}

	// The demo is idempotent: a rerun against the same server must not
	// error (create tolerates the existing collection) and appends.
	if err := demo(ts.URL, &out); err != nil {
		t.Fatalf("second run: %v", err)
	}
}

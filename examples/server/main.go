// Command server demonstrates a Go client speaking bondd's HTTP JSON
// API: create a collection, batch-ingest, run a query and a batch, and
// fetch the EXPLAIN plan.
//
// Start a server and point the example at it:
//
//	go run ./cmd/bondd -addr :8666 -data /tmp/bondd-demo &
//	go run ./examples/server -addr http://localhost:8666
//
// The same flow runs against an in-process httptest server in
// main_test.go, which is how `go test ./...` exercises it without a
// network.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
)

func main() {
	addr := flag.String("addr", "http://localhost:8666", "base URL of a running bondd")
	flag.Parse()
	if err := demo(*addr, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "server example:", err)
		os.Exit(1)
	}
}

// neighbor mirrors one scored match of a bondd query response.
type neighbor struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// demo drives the whole client flow against base. It is the piece the
// example test reuses against an httptest server.
func demo(base string, out io.Writer) error {
	const dims = 16
	rng := rand.New(rand.NewSource(42))
	vectors := make([][]float64, 400)
	for i := range vectors {
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}

	// Create (idempotent when the shape matches).
	if err := call(base, http.MethodPut, "/collections/demo",
		map[string]any{"dims": dims, "segment_size": 128}, nil); err != nil {
		return fmt.Errorf("create: %w", err)
	}

	// Batch ingest.
	var ingest struct {
		FirstID int `json:"first_id"`
		Count   int `json:"count"`
	}
	if err := call(base, http.MethodPost, "/collections/demo/vectors",
		map[string]any{"vectors": vectors}, &ingest); err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	fmt.Fprintf(out, "ingested %d vectors starting at id %d\n", ingest.Count, ingest.FirstID)

	// One query: 10 nearest neighbors of vector 7 by squared Euclidean
	// distance, access path left to the cost-based planner.
	var q struct {
		Results []neighbor `json:"results"`
		Stats   struct {
			SegmentsSearched int `json:"segments_searched"`
			SegmentsSkipped  int `json:"segments_skipped"`
		} `json:"stats"`
	}
	if err := call(base, http.MethodPost, "/collections/demo/query",
		map[string]any{"query": vectors[7], "k": 10, "criterion": "Eq"}, &q); err != nil {
		return fmt.Errorf("query: %w", err)
	}
	fmt.Fprintf(out, "top-1 id=%d score=%.6f (searched %d segments, skipped %d)\n",
		q.Results[0].ID, q.Results[0].Score, q.Stats.SegmentsSearched, q.Stats.SegmentsSkipped)

	// A batch amortizes planning and fans out over the server's worker pool.
	var batch struct {
		Results []struct {
			Results []neighbor `json:"results"`
		} `json:"results"`
	}
	if err := call(base, http.MethodPost, "/collections/demo/query/batch", map[string]any{
		"queries": []map[string]any{
			{"query": vectors[1], "k": 3},
			{"query": vectors[2], "k": 3, "criterion": "Eq"},
			{"id": 3, "k": 3, "strategy": "bond"}, // query-by-example
		},
	}, &batch); err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	fmt.Fprintf(out, "batch answered %d queries\n", len(batch.Results))

	// EXPLAIN: the per-segment plan with predicted vs actual costs.
	var exp struct {
		Plan string `json:"plan"`
	}
	if err := call(base, http.MethodGet, "/collections/demo/explain?id=7&k=10&criterion=Eq", nil, &exp); err != nil {
		return fmt.Errorf("explain: %w", err)
	}
	fmt.Fprint(out, exp.Plan)
	return nil
}

// call issues one JSON request and decodes the JSON response into out
// (when non-nil), treating any non-2xx status as an error carrying the
// server's {"error": …} message.
func call(base, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (status %d)", method, path, e.Error, resp.StatusCode)
		}
		return fmt.Errorf("%s %s: status %d", method, path, resp.StatusCode)
	}
	if out != nil {
		return json.Unmarshal(raw, out)
	}
	return nil
}

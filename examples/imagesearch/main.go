// Imagesearch: the paper's motivating application — interactive
// content-based image retrieval over HSV color histograms.
//
// The example demonstrates query-by-example search, the compressed
// filter-and-refine path, combining k-NN with a selection predicate, and
// updates (append + delete + compact).
//
// Run with: go run ./examples/imagesearch
package main

import (
	"fmt"
	"log"
	"time"

	"bond"
	"bond/internal/dataset"
)

func main() {
	const (
		nImages = 20000
		bins    = 166 // (18 hues × 3 saturations × 3 values) + 4 grays
		k       = 10
	)
	fmt.Printf("indexing %d images as %d-bin HSV histograms...\n", nImages, bins)
	histograms := dataset.CorelLike(nImages, bins, 7)
	col := bond.NewCollection(histograms)

	query := col.Vector(4711) // "find images like this one"

	// Exact BOND search.
	start := time.Now()
	res, err := col.Search(query, bond.Options{K: k, Criterion: bond.Hq})
	if err != nil {
		log.Fatal(err)
	}
	bondTime := time.Since(start)
	fmt.Printf("\nBOND (Hq): %v, scanned %d values\n", bondTime, res.Stats.ValuesScanned)
	printTop(res.Results, 5)

	// Compressed filter-and-refine: reads 8-bit codes first, exact values
	// only for the handful of survivors.
	start = time.Now()
	cres, err := col.SearchCompressed(query, bond.Options{K: k, Criterion: bond.Hq})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompressed BOND: %v, filter kept %d candidates, refine read %d exact values\n",
		time.Since(start), cres.FilterCandidates, cres.RefineValuesScanned)
	printTop(cres.Results, 5)

	// k-NN restricted by a predicate: "only images from batch B" becomes an
	// exclusion bitmap over everything else (Section 6.1 of the paper).
	excl := col.NewExclusion()
	for id := 0; id < col.Len(); id++ {
		if id%3 != 0 { // keep only every third image
			excl.Set(id)
		}
	}
	pres, err := col.Search(query, bond.Options{K: k, Criterion: bond.Hq, Exclude: excl})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith predicate (every third image only):")
	printTop(pres.Results, 5)

	// Updates: new images arrive, an old one is removed.
	newID := col.Add(query) // an exact duplicate of the query image
	col.Delete(4711)
	res2, err := col.Search(query, bond.Options{K: 1, Criterion: bond.Hq})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter appending a duplicate and deleting the original: best = id %d (want %d)\n",
		res2.Results[0].ID, newID)
	col.Compact()
	fmt.Printf("compacted: %d live images\n", col.Live())
}

func printTop(results []bond.Neighbor, n int) {
	for rank, r := range results {
		if rank == n {
			break
		}
		fmt.Printf("  %2d. image %-6d similarity %.4f\n", rank+1, r.ID, r.Score)
	}
}

// Package bond is a Go implementation of BOND — Branch-and-bound ON
// Decomposed data — the k-nearest-neighbor search technique of de Vries,
// Mamoulis, Nes and Kersten, "Efficient k-NN Search on Vertically
// Decomposed Data", ACM SIGMOD 2002.
//
// # Storage model
//
// A Collection stores N-dimensional feature vectors in a segmented,
// vertically decomposed layout: the collection is split into immutable
// sealed segments plus one mutable active segment, and inside every
// segment each dimension is a contiguous column with a per-vector total
// side table. Appends go to the active segment, which seals at a size
// threshold; deletes are bitmap marks inside their segment; Compact
// rewrites only segments whose tombstone ratio warrants it. Every sealed
// segment carries a per-dimension min/max synopsis and lazily built 8-bit
// compressed fragments.
//
// k-NN queries run BOND per segment — scanning columns in a
// query-dependent order and pruning vectors branch-and-bound style as
// partial scores accumulate — and merge the per-segment top-k lists into
// the exact global answer. Before a segment is searched, its synopsis
// bounds the best score any of its members could reach; once k results
// are in hand, segments that cannot beat the current k-th best are
// skipped without reading a single column. On data with locality (ingest
// by time or by class), whole segments fall away.
//
// # Concurrency
//
// A Collection is safe for concurrent use: any number of readers
// (Query, QueryBatch, Search, SearchParallel, SearchCompressed,
// SearchMIL, Len, Save, …) run concurrently with each other, and writers
// (Add, AddBatch, Delete, Compact, Recluster) are serialized against them by an
// internal RWMutex. Every
// search observes a consistent snapshot and returns exact results.
// SearchProgressive and AsFeature take a snapshot under the lock (sealed
// segments are shared structurally; the small active segment is copied),
// so the returned Progressive and Feature values may be driven after the
// call without further locking, while writers proceed.
//
// # Queries and the planner
//
// Every query runs through a cost-based planner (package plan): a single
// QuerySpec is turned into a per-segment plan that assigns each segment
// an access path — plain BOND, 8-bit compressed filter-and-refine, a
// VA-File filter, an exact scan, or the MIL reference engine — from the
// segment's synopsis and an adaptive per-collection cost model that the
// executor feeds back into after every query. Plan.Explain (via
// Collection.QueryExplain) prints the chosen paths with predicted and
// actual costs.
//
// # Basic use
//
//	col := bond.NewCollection(vectors)          // vectors: [][]float64
//	res, err := col.Query(bond.QuerySpec{Query: q, K: 10, Criterion: bond.Hq})
//
// The legacy Search* entry points remain as thin wrappers over Query
// with a forced strategy; they return identical results.
//
// Supported query classes (exact unless the spec sets Tolerance or
// Deadline):
//
//   - histogram-intersection similarity (criteria Hq, Hh),
//   - squared Euclidean distance (criteria Eq, Ev),
//   - weighted Euclidean and dimensional-subspace queries,
//   - filter-and-refine search on 8-bit compressed fragments (compressed
//     and VA-File access paths),
//   - multi-feature queries across several collections (see MultiSearch).
//
// # Durability
//
// OpenDurable opens a crash-safe collection backed by a write-ahead log
// plus incremental checkpoints: every mutation is logged — and, under
// FsyncAlways, fsynced — before it is acknowledged, checkpoints rewrite
// only the manifest and the active segment (sealed segment files are
// written exactly once, ever), and recovery replays the log tail on top
// of the last checkpoint, always yielding a consistent prefix of the
// acknowledged history. Collection.Checkpoint truncates the log;
// Collection.Close releases it. The whole-file snapshot format remains
// available (Save/Open), files written by earlier flat-layout versions
// still load, and OpenDurable migrates legacy snapshot files in place.
//
// # Serving
//
// cmd/bondd serves many named collections from one process over an HTTP
// JSON API that maps directly onto this package: QuerySpec and
// QueryBatch on the wire, EXPLAIN over HTTP, and a background
// maintenance loop driving CompactRatio and Save. The hooks it builds on
// — TombstoneRatio, StatsSnapshot, TryVector, TryDelete — are exported
// here so other embedders can build the same kind of layer.
package bond

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"bond/internal/bitmap"
	"bond/internal/cluster"
	"bond/internal/core"
	"bond/internal/kernel"
	"bond/internal/multifeature"
	"bond/internal/plan"
	"bond/internal/quant"
	"bond/internal/topk"
	"bond/internal/vafile"
	"bond/internal/vstore"
)

// Re-exported search types. See package core for the full documentation of
// each criterion, ordering, and option.
type (
	// Options configures a Search. Zero value + K is a sensible default
	// (criterion Hq, descending-query order, step 8).
	Options = core.Options
	// Criterion selects pruning rule and metric.
	Criterion = core.Criterion
	// Order selects the dimension processing order.
	Order = core.Order
	// Result is a completed search with work statistics.
	Result = core.Result
	// CompressedResult is a completed filter-and-refine search.
	CompressedResult = core.CompressedResult
	// Neighbor is one scored match.
	Neighbor = topk.Result
	// Stats describes the work a search performed, including how many
	// segments were searched and how many the synopses skipped.
	Stats = core.Stats
	// MILOptions configures the MIL reference engine.
	MILOptions = core.MILOptions
	// Feature is one component of a multi-feature query.
	Feature = multifeature.Feature
	// Aggregate combines per-feature similarities.
	Aggregate = multifeature.Aggregate
	// MultiOptions configures a multi-feature search.
	MultiOptions = multifeature.Options
	// MultiResult is a completed multi-feature search.
	MultiResult = multifeature.Result
	// ClusterOptions configures k-means over the decomposed collection.
	ClusterOptions = cluster.Options
	// ClusterResult is a completed clustering.
	ClusterResult = cluster.Result

	// QuerySpec is the single query description every search reduces to:
	// query vector, k, metric, weights/subspace, tolerance, deadline, and
	// strategy/parallelism hints. See Collection.Query.
	QuerySpec = plan.Spec
	// QueryResult is a completed planned query: the exact top-k, merged
	// work statistics, and (for filter-and-refine paths) the compressed
	// counters.
	QueryResult = plan.Result
	// QueryPlan is a planned query; QueryPlan.Explain renders the chosen
	// per-segment access paths with predicted and actual costs.
	QueryPlan = plan.Plan
	// Strategy forces an access path or (StrategyAuto) lets the planner
	// choose per segment by predicted cost.
	Strategy = plan.Strategy
	// PlannerCoefficients is the adaptive per-collection cost-model block,
	// persisted by Save and reloaded by Open.
	PlannerCoefficients = plan.Coefficients
)

// Access-path strategies for QuerySpec.Strategy.
const (
	// StrategyAuto picks the cheapest eligible access path per segment
	// from the collection's adaptive cost model. The default.
	StrategyAuto = plan.Auto
	// StrategyBOND forces plain BOND on every segment.
	StrategyBOND = plan.ForceBOND
	// StrategyCompressed forces 8-bit filter-and-refine on sealed
	// segments (exact scan on the active one).
	StrategyCompressed = plan.ForceCompressed
	// StrategyVAFile forces the VA-File filter on sealed segments (exact
	// scan on the active one).
	StrategyVAFile = plan.ForceVAFile
	// StrategyExact forces a full exact scan — the seqscan oracle.
	StrategyExact = plan.ForceExact
	// StrategyMIL forces the MIL relational-operator reference engine.
	StrategyMIL = plan.ForceMIL
)

// ParseStrategy parses a strategy name (auto, bond, compressed, vafile,
// exact, mil) as the CLIs spell it.
func ParseStrategy(s string) (Strategy, error) { return plan.ParseStrategy(s) }

// ParseCriterion parses a criterion name (hq, hh, eq, ev; case-insensitive)
// as the CLIs and the HTTP API spell it.
func ParseCriterion(s string) (Criterion, error) {
	switch strings.ToLower(s) {
	case "hq", "":
		return Hq, nil
	case "hh":
		return Hh, nil
	case "eq":
		return Eq, nil
	case "ev":
		return Ev, nil
	}
	return Hq, fmt.Errorf("bond: unknown criterion %q (want Hq, Hh, Eq, or Ev)", s)
}

// ParseOrder parses a dimension-order name (desc, asc, random, natural;
// case-insensitive) as the CLIs and the HTTP API spell it.
func ParseOrder(s string) (Order, error) {
	switch strings.ToLower(s) {
	case "desc", "":
		return OrderQueryDesc, nil
	case "asc":
		return OrderQueryAsc, nil
	case "random":
		return OrderRandom, nil
	case "natural":
		return OrderNatural, nil
	}
	return OrderQueryDesc, fmt.Errorf("bond: unknown order %q (want desc, asc, random, or natural)", s)
}

// Pruning criteria (Section 4 of the paper).
const (
	// Hq: histogram intersection, query-only bounds. The paper's best
	// all-round criterion.
	Hq = core.Hq
	// Hh: histogram intersection, per-vector bounds (tighter, more
	// bookkeeping).
	Hh = core.Hh
	// Eq: squared Euclidean distance, constant bounds.
	Eq = core.Eq
	// Ev: squared Euclidean distance, per-vector bounds.
	Ev = core.Ev
)

// Dimension orderings (Section 5.1).
const (
	OrderQueryDesc = core.OrderQueryDesc
	OrderQueryAsc  = core.OrderQueryAsc
	OrderRandom    = core.OrderRandom
	OrderNatural   = core.OrderNatural
)

// Aggregates for multi-feature queries (Section 8.2).
const (
	WeightedAvg = multifeature.WeightedAvg
	MinAgg      = multifeature.MinAgg
	MaxAgg      = multifeature.MaxAgg
)

// DefaultSegmentSize is the seal threshold of a collection's active
// segment.
const DefaultSegmentSize = vstore.DefaultSegmentSize

// Collection is a segmented, vertically decomposed vector collection,
// safe for concurrent readers and writers (see the package comment for
// the contract).
type Collection struct {
	mu    sync.RWMutex
	store *vstore.SegStore
	// model is the adaptive cost model the query planner predicts from;
	// every executed query feeds observed costs back into it. It has its
	// own lock, so concurrent readers update it safely. It also owns the
	// pooled plans and executor scratch the query hot path reuses.
	model *plan.Model

	// planCache is the memoized planner view of the current segments, so a
	// steady-state query does not rebuild the segment list (and its lazy
	// access-path providers) per query. Cache hits are a single atomic
	// load, keeping concurrent readers off any shared mutex; planCacheMu
	// only serializes the rebuild (queries hold just the read lock, so two
	// could race to build). Writers invalidate by storing nil under the
	// write lock.
	planCacheMu sync.Mutex
	planCache   atomic.Pointer[[]plan.Segment]

	// dur is the durability state of a collection opened with
	// OpenDurable: the write-ahead log every mutation is appended to
	// before it is acknowledged, plus checkpoint bookkeeping. nil for
	// in-memory collections (NewCollection, Open), whose mutators then
	// skip logging entirely.
	dur *durability

	// reclusters counts completed re-clustering passes since open, and
	// reclusterMark remembers the sealed slot count right after the last
	// one so ReclusterAdvice does not re-advise an unchanged layout. Both
	// are guarded by mu; neither is persisted (they are process-lifetime
	// observability, not replayed state).
	reclusters    int64
	reclusterMark int
}

// unitQuantizer is the paper's 8-bit [0,1] grid, shared by every segment's
// compressed access paths. Quantizers are immutable, so one instance
// serves all collections without per-query allocation.
var unitQuantizer = quant.NewUnit()

// NewCollection decomposes a row-major collection using the default
// segment size. It panics on empty or ragged input (programmer error);
// use New plus Add for incremental builds.
func NewCollection(vectors [][]float64) *Collection {
	return &Collection{store: vstore.SegmentedFromVectors(vectors, DefaultSegmentSize), model: plan.NewModel()}
}

// NewCollectionSegmented decomposes a row-major collection with an
// explicit segment size (segmentSize <= 0 selects the default) — useful
// to align segment boundaries with known data locality.
func NewCollectionSegmented(vectors [][]float64, segmentSize int) *Collection {
	return &Collection{store: vstore.SegmentedFromVectors(vectors, segmentSize), model: plan.NewModel()}
}

// New returns an empty collection of the given dimensionality.
func New(dims int) *Collection {
	return &Collection{store: vstore.NewSegmented(dims, DefaultSegmentSize), model: plan.NewModel()}
}

// NewSegmented returns an empty collection with an explicit segment size
// (segmentSize <= 0 selects the default).
func NewSegmented(dims, segmentSize int) *Collection {
	return &Collection{store: vstore.NewSegmented(dims, segmentSize), model: plan.NewModel()}
}

// Open loads a collection previously written by Save. Both the segmented
// layout and the flat layout of earlier versions are understood. The
// planner's learned cost coefficients, when present in the file, are
// restored so the reopened collection plans from its own history.
func Open(path string) (*Collection, error) {
	s, err := vstore.LoadAnyFile(path)
	if err != nil {
		return nil, err
	}
	return &Collection{store: s, model: plan.LoadModel(s.PlannerStats())}, nil
}

// Save writes the collection to path in the checksummed segmented binary
// format, including the planner's current cost-model coefficients.
// Compressed fragments are rebuilt on demand and not persisted.
func (c *Collection) Save(path string) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return err
	}
	return c.store.SaveFileWith(path, c.model.Marshal())
}

// PlannerStats returns a snapshot of the planner's adaptive cost-model
// coefficients.
func (c *Collection) PlannerStats() PlannerCoefficients {
	return c.model.Snapshot()
}

// PlannerModelStats is the serializable planner view a stats endpoint
// exposes: the cost-model coefficients plus gauges over the pooled
// execution lanes.
type PlannerModelStats = plan.ModelStats

// SegmentSynopsis is the compact serializable summary of one segment's
// per-dimension min/max synopsis.
type SegmentSynopsis = core.Synopsis

// SegmentStats describes one physical segment of a collection as a stats
// endpoint reports it.
type SegmentStats struct {
	// Base is the global id of the segment's local id 0; Len its slot
	// count (including delete-marked slots) and Live the searchable count.
	Base int `json:"base"`
	Len  int `json:"len"`
	Live int `json:"live"`
	// Sealed marks immutable segments (eligible for compressed access
	// paths); the unsealed tail is the active segment appends land in.
	Sealed bool `json:"sealed"`
	// Mapped marks segments whose exact columns alias a read-only memory
	// mapping of their v2 segment file instead of heap memory.
	Mapped bool `json:"mapped,omitempty"`
	// Synopsis summarizes the per-dimension min/max synopsis; nil when the
	// segment has none (empty, or a dimension with no observed data).
	Synopsis *SegmentSynopsis `json:"synopsis,omitempty"`
}

// CollectionStats is a consistent point-in-time description of a
// collection: shape, tombstone load, the planner's learned cost model,
// and one entry per physical segment. It is what bondd's stats endpoint
// serves per collection.
type CollectionStats struct {
	Dims int `json:"dims"`
	// Len counts id slots including delete-marked ones; Live the
	// searchable vectors; Segments the physical segments (sealed + active).
	Len      int `json:"len"`
	Live     int `json:"live"`
	Segments int `json:"segments"`
	// TombstoneRatio is (Len−Live)/Len — the signal background compaction
	// triggers on. 0 for an empty collection.
	TombstoneRatio float64 `json:"tombstone_ratio"`
	// Reclusters counts completed re-clustering passes since open, and
	// SealedSpread is the synopsis-spread gauge background re-clustering
	// triggers on (≈1 shuffled, ≈0 cluster-contiguous; see SealedSpread).
	// SpreadMeasured is false when the gauge is unavailable (no sealed
	// segment with a synopsis), in which case SealedSpread is 0.
	Reclusters     int64   `json:"reclusters"`
	SealedSpread   float64 `json:"sealed_spread"`
	SpreadMeasured bool    `json:"spread_measured"`
	// MappedBytes is the total size of the memory mappings backing sealed
	// segments (0 for heap-backed collections); HeapBytes the exact column
	// bytes resident on the Go heap. Their sum is the collection's exact
	// data footprint; the ratio shows how much of it the page cache, not
	// the heap, is carrying.
	MappedBytes int64 `json:"mapped_bytes"`
	HeapBytes   int64 `json:"heap_bytes"`
	// SIMD names the vector instruction set the kernels dispatch to
	// ("avx2", or "none" for the portable loops).
	SIMD string `json:"simd"`
	// Planner is the adaptive cost model's serializable view.
	Planner PlannerModelStats `json:"planner"`
	// Durability is the WAL/checkpoint gauge block of a collection opened
	// with OpenDurable; nil for in-memory collections.
	Durability *DurabilityStats `json:"durability,omitempty"`
	// SegmentStats has one entry per segment in id order.
	SegmentStats []SegmentStats `json:"segment_stats"`
}

// TombstoneRatio returns the fraction of the collection's id slots that
// carry a delete mark — the maintenance signal a serving layer compacts
// on. An empty collection reports 0.
func (c *Collection) TombstoneRatio() float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n := c.store.Len()
	if n == 0 {
		return 0
	}
	return float64(n-c.store.Live()) / float64(n)
}

// StatsSnapshot returns a consistent point-in-time CollectionStats taken
// under the read lock: collection shape, tombstone ratio, the planner's
// cost-model view, and a per-segment summary (slots, live count, sealed
// flag, synopsis bounds).
func (c *Collection) StatsSnapshot() CollectionStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	segs, bases := c.store.Segments(), c.store.Bases()
	st := CollectionStats{
		Dims:         c.store.Dims(),
		Len:          c.store.Len(),
		Live:         c.store.Live(),
		Segments:     len(segs),
		MappedBytes:  c.store.MappedBytes(),
		SIMD:         kernel.SIMD(),
		Planner:      c.model.Stats(),
		SegmentStats: make([]SegmentStats, len(segs)),
	}
	if st.Len > 0 {
		st.TombstoneRatio = float64(st.Len-st.Live) / float64(st.Len)
	}
	st.Reclusters = c.reclusters
	st.SealedSpread, st.SpreadMeasured = c.sealedSpreadLocked()
	if ds, ok := c.walStatsLocked(); ok {
		st.Durability = &ds
	}
	for i, g := range segs {
		ss := SegmentStats{Base: bases[i], Len: g.Len(), Live: g.Live(), Sealed: g.Sealed(), Mapped: g.Mapped()}
		if !g.Mapped() {
			st.HeapBytes += int64(g.Len()) * int64(st.Dims) * 8
		}
		view := core.SegmentView{Src: g, Base: bases[i], DimRange: g.DimRange}
		if syn, ok := core.SummarizeSynopsis(view); ok {
			syn := syn
			ss.Synopsis = &syn
		}
		st.SegmentStats[i] = ss
	}
	return st
}

// Dims returns the dimensionality.
func (c *Collection) Dims() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.Dims()
}

// Len returns the number of vector slots, including delete-marked ones.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.Len()
}

// Live returns the number of searchable vectors.
func (c *Collection) Live() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.Live()
}

// NumSegments returns the number of physical segments (sealed plus the
// active one).
func (c *Collection) NumSegments() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.store.NumSegments()
}

// SealActive force-seals the active segment, freezing the current layout
// (subsequent appends open a fresh segment). Mostly useful to align
// segment boundaries with data locality before a read-heavy phase. On a
// durable collection it panics if the seal cannot be logged; use
// SealActiveDurable to handle that error.
func (c *Collection) SealActive() {
	if err := c.SealActiveDurable(); err != nil {
		panic(fmt.Sprintf("bond: SealActive: %v", err))
	}
}

// Vector returns a copy of vector id. It panics on an out-of-range id;
// callers racing writers (or background compaction, which remaps ids)
// should use TryVector.
func (c *Collection) Vector(id int) []float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		panic("bond: Vector on closed collection with mapped segments")
	}
	return c.store.Row(id)
}

// TryVector returns a copy of vector id, or ok=false when id is outside
// the collection. The bounds check and the read happen under one lock
// acquisition, so it is safe against concurrent compaction — the
// check-then-Vector idiom is not.
func (c *Collection) TryVector(id int) (v []float64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if id < 0 || id >= c.store.Len() || c.errIfUnmapped() != nil {
		return nil, false
	}
	return c.store.Row(id), true
}

// Add appends a vector and returns its id. Sealed segments and their
// compressed fragments are untouched; only the active segment changes.
// On a durable collection the vector is logged (and, under FsyncAlways,
// fsynced) before it is applied; Add panics if the log rejects the
// record — use AddDurable to handle that error instead.
func (c *Collection) Add(v []float64) int {
	id, err := c.AddDurable(v)
	if err != nil {
		panic(fmt.Sprintf("bond: Add: %v", err))
	}
	return id
}

// AddBatch appends many vectors, returning the first new id. On a
// durable collection the batch is logged as one atomic record before it
// is applied; AddBatch panics if the log rejects it — use
// AddBatchDurable to handle that error instead.
func (c *Collection) AddBatch(vectors [][]float64) int {
	first, err := c.AddBatchDurable(vectors)
	if err != nil {
		panic(fmt.Sprintf("bond: AddBatch: %v", err))
	}
	return first
}

// Delete marks vector id as deleted; it is skipped by every search until
// a compaction removes it physically. It panics on an out-of-range id
// (callers racing other writers should use TryDelete) and, on a durable
// collection, when the tombstone cannot be logged — use TryDeleteDurable
// to handle that error.
func (c *Collection) Delete(id int) {
	ok, err := c.TryDeleteDurable(id)
	if err != nil {
		panic(fmt.Sprintf("bond: Delete: %v", err))
	}
	if !ok {
		panic(fmt.Sprintf("bond: Delete of id %d outside collection", id))
	}
}

// TryDelete marks vector id as deleted, reporting false when id is
// outside the collection. The bounds check and the mark happen under one
// lock acquisition, so it is safe against a concurrent compaction
// shrinking the id space — the check-then-Delete idiom is not. On a
// durable collection it panics if the tombstone cannot be logged; use
// TryDeleteDurable to handle that error.
func (c *Collection) TryDelete(id int) bool {
	ok, err := c.TryDeleteDurable(id)
	if err != nil {
		panic(fmt.Sprintf("bond: TryDelete: %v", err))
	}
	return ok
}

// Compact physically removes every delete-marked vector, returning the
// old-id → new-id mapping (−1 for removed ids). Segments without
// tombstones are left untouched, so the cost scales with the churned part
// of the collection; see CompactRatio to also leave barely-churned
// segments alone.
func (c *Collection) Compact() []int {
	return c.CompactRatio(0)
}

// CompactRatio rewrites only the segments whose tombstone ratio is at
// least minRatio, returning the old-id → new-id mapping. Ids in segments
// below the ratio keep their tombstones (and the mapping reflects any
// shift caused by earlier rewritten segments). On a durable collection
// it panics if the compaction cannot be logged; use CompactRatioDurable
// to handle that error.
func (c *Collection) CompactRatio(minRatio float64) []int {
	mapping, err := c.CompactRatioDurable(minRatio)
	if err != nil {
		panic(fmt.Sprintf("bond: CompactRatio: %v", err))
	}
	return mapping
}

// planSegments exposes the current segments to the query planner: the
// engine view of each segment plus, for sealed segments, the lazily built
// compressed access paths (column codes for the compressed filter,
// row-major codes for the VA-File). The list is memoized until a writer
// changes the store, so the steady-state query path allocates nothing
// here. Callers must hold at least the read lock for the duration of the
// search.
// errIfUnmapped returns ErrClosed when Close has released the memory
// mappings some sealed segments' columns aliased — from that point the
// column data is simply gone, so read paths refuse instead of faulting.
// Heap-backed collections never trip this: their reads keep working after
// Close, as they always have. Callers hold at least the read lock.
func (c *Collection) errIfUnmapped() error {
	if c.store.MappingsReleased() {
		return ErrClosed
	}
	return nil
}

func (c *Collection) planSegments() []plan.Segment {
	if cached := c.planCache.Load(); cached != nil {
		return *cached
	}
	c.planCacheMu.Lock()
	defer c.planCacheMu.Unlock()
	if cached := c.planCache.Load(); cached != nil {
		return *cached
	}
	segs, bases := c.store.Segments(), c.store.Bases()
	out := make([]plan.Segment, len(segs))
	for i, g := range segs {
		out[i] = plan.Segment{
			View:   core.SegmentView{Src: g, Base: bases[i], DimRange: g.DimRange},
			Sealed: g.Sealed(),
			Mapped: g.Mapped(),
		}
		if g.Mapped() {
			out[i].NoteScan = g.NoteScan
		}
		if g.Sealed() {
			g := g
			out[i].Codes = func() *vstore.QuantStore { return g.Codes(unitQuantizer) }
			// The File wrapper is memoized alongside the cached segment
			// list, so repeated VA-File steps over the same segment reuse
			// one wrapper instead of re-wrapping the codes per query.
			var vaOnce sync.Once
			var va *vafile.File
			out[i].VA = func() *vafile.File {
				vaOnce.Do(func() {
					qz, codes := g.RowCodes(unitQuantizer)
					va = vafile.FromRowCodes(qz, g.Len(), g.Dims(), codes)
				})
				return va
			}
		}
	}
	c.planCache.Store(&out)
	return out
}

// invalidatePlanCache drops the memoized planner segments; every writer
// calls it under the write lock (invalidating on plain deletes too is
// slightly conservative but keeps the rule trivially safe).
func (c *Collection) invalidatePlanCache() {
	c.planCache.Store(nil)
}

// snapshotSource fixes a segment's delete marks at snapshot time, so the
// snapshot stays consistent when a writer deletes concurrently.
type snapshotSource struct {
	core.Source
	deleted *bitmap.Bitmap
}

func (s snapshotSource) DeletedBitmap() *bitmap.Bitmap { return s.deleted.Clone() }

// DeletedView must shadow the embedded segment's: the snapshot pins the
// delete marks of snapshot time, while the segment's view is live.
func (s snapshotSource) DeletedView() *bitmap.Bitmap { return s.deleted }

// snapshotViews returns segment views that remain valid after the lock is
// released: sealed segments share columns (immutable) with delete marks
// pinned, and the active segment is deep-copied. Callers must hold at
// least the read lock while calling.
func (c *Collection) snapshotViews() []core.SegmentView {
	segs, bases := c.store.Segments(), c.store.Bases()
	views := make([]core.SegmentView, len(segs))
	for i, g := range segs {
		if g.Sealed() {
			snap := snapshotSource{Source: g, deleted: g.DeletedBitmap()}
			views[i] = core.SegmentView{Src: snap, Base: bases[i], DimRange: g.DimRange}
		} else {
			cp := g.Store.Clone()
			views[i] = core.SegmentView{Src: cp, Base: bases[i], DimRange: cp.DimRange}
		}
	}
	return views
}

// Query plans and executes a query: the spec is turned into a Plan — an
// ordered list of per-segment steps, each assigned an access path (plain
// BOND, 8-bit compressed filter-and-refine, VA-File filter, exact scan,
// or the MIL reference engine) from the segment's synopsis and the
// collection's adaptive cost model — and the plan runs through the shared
// engine, skipping segments whose synopses prove them hopeless. Observed
// costs feed back into the model, so plans adapt as data and workloads
// shift. The answer is exact unless the spec sets Tolerance or Deadline.
//
// All legacy Search* entry points are thin wrappers over Query.
//
// The hot path is allocation-free in steady state: the plan, the engine
// scratch (scores, candidate lists, heaps, bound tables), and the planner
// segment list are all pooled per collection, so a repeated Query performs
// ~2 allocations — the returned result list and its step log. Weighted and
// subspace specs may add a few small ones.
func (c *Collection) Query(spec QuerySpec) (QueryResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return QueryResult{}, err
	}
	p, err := plan.NewReusable(c.planSegments(), spec, c.model)
	if err != nil {
		return QueryResult{}, err
	}
	defer p.Release()
	return plan.Execute(p)
}

// QueryExplain is Query returning the executed plan as well, with
// per-segment predicted and actual costs filled in for Plan.Explain.
func (c *Collection) QueryExplain(spec QuerySpec) (QueryResult, *QueryPlan, error) {
	return c.queryPlanned(spec)
}

// QueryBatch plans and executes many queries against one consistent
// snapshot of the collection, amortizing the per-query setup a loop of
// Query calls pays N times: the read lock is taken once, the planner's
// segment list is shared, the queries fan out over a bounded worker pool
// (one goroutine per logical CPU, each reusing one pooled plan-and-scratch
// lane — score buffers, heaps, and VA bound tables — across all the
// queries it drains), and the cost model is fed one batch-aggregate
// observation per access path instead of per-step updates. Results are
// positionally aligned with specs and identical to what Query would have
// returned for each spec.
//
// Specs are independent: they may mix criteria, strategies, and k. A
// failing spec aborts the batch, which returns the lowest-indexed
// observed failure (wrapped with the spec's index); per-spec deadlines
// and tolerances apply as in Query.
func (c *Collection) QueryBatch(specs []QuerySpec) ([]QueryResult, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return nil, err
	}
	segs := c.planSegments()
	results := make([]QueryResult, len(specs))
	fb := plan.NewFeedbackBatch()

	runOne := func(i int) error {
		p, err := plan.NewReusable(segs, specs[i], c.model)
		if err != nil {
			return err
		}
		defer p.Release()
		p.UseBatchFeedback(fb)
		results[i], err = plan.Execute(p)
		return err
	}

	workers := runtime.GOMAXPROCS(0)
	if workers > len(specs) {
		workers = len(specs)
	}
	var firstErr error
	if workers <= 1 {
		for i := range specs {
			if err := runOne(i); err != nil {
				firstErr = fmt.Errorf("bond: batch query %d: %w", i, err)
				break
			}
		}
	} else {
		var (
			next     atomic.Int64
			errMu    sync.Mutex
			wg       sync.WaitGroup
			aborted  atomic.Bool
			errIndex = -1
		)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(specs) || aborted.Load() {
						return
					}
					if err := runOne(i); err != nil {
						// Keep the lowest failing index so the reported
						// error is deterministic under worker scheduling.
						errMu.Lock()
						if errIndex < 0 || i < errIndex {
							errIndex = i
							firstErr = fmt.Errorf("bond: batch query %d: %w", i, err)
						}
						errMu.Unlock()
						aborted.Store(true)
						return
					}
				}
			}()
		}
		wg.Wait()
	}
	if firstErr != nil {
		return nil, firstErr
	}
	fb.Flush(c.model)
	return results, nil
}

func (c *Collection) queryPlanned(spec QuerySpec) (QueryResult, *QueryPlan, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return QueryResult{}, nil, err
	}
	p, err := plan.New(c.planSegments(), spec, c.model)
	if err != nil {
		return QueryResult{}, nil, err
	}
	res, err := plan.Execute(p)
	if err != nil {
		return QueryResult{}, p, err
	}
	return res, p, nil
}

// Search runs BOND and returns the exact K best matches for q, skipping
// whole segments whose synopses prove them hopeless (reported in
// Stats.SegmentsSkipped).
//
// Deprecated: use Query with a QuerySpec; Search forces StrategyBOND and
// cannot benefit from cost-based access-path selection.
func (c *Collection) Search(q []float64, opts Options) (Result, error) {
	spec := plan.SpecFromOptions(q, opts)
	spec.Strategy = StrategyBOND
	res, err := c.Query(spec)
	if err != nil {
		return Result{}, err
	}
	return Result{Results: res.Results, Stats: res.Stats}, nil
}

// SearchParallel runs BOND concurrently — one goroutine per segment — and
// merges the per-segment results; the answer is identical to Search. The
// shards argument is kept for compatibility and only selects the
// sequential path when < 2; the parallelism degree is the segment count.
//
// Deprecated: use Query with QuerySpec.Parallel ≥ 2, which fans out only
// the segments large enough to pay for a goroutine.
func (c *Collection) SearchParallel(q []float64, opts Options, shards int) (Result, error) {
	spec := plan.SpecFromOptions(q, opts)
	spec.Strategy = StrategyBOND
	if shards >= 2 {
		spec.Parallel = shards
	}
	res, err := c.Query(spec)
	if err != nil {
		return Result{}, err
	}
	return Result{Results: res.Results, Stats: res.Stats}, nil
}

// Progressive is an incremental search whose steps the caller drives,
// with the shrinking candidate set inspectable in between.
type Progressive = core.Progressive

// SearchProgressive prepares an incremental search over a snapshot of the
// collection; call Step until it returns false (or stop early) and Finish
// for the exact results. The snapshot means concurrent writers do not
// disturb (and are not seen by) the running search. The spec is validated
// through the planner; the incremental engines then advance every segment
// in lockstep (per-segment path choice does not apply to a search whose
// intermediate state the caller inspects).
//
// Deprecated: prefer Query for one-shot searches; SearchProgressive
// remains the entry point for caller-driven incremental retrieval.
func (c *Collection) SearchProgressive(q []float64, opts Options) (*Progressive, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return nil, err
	}
	views := c.snapshotViews()
	spec := plan.SpecFromOptions(q, opts)
	spec.Strategy = StrategyBOND
	if _, err := plan.New(plan.WrapViews(views), spec, c.model); err != nil {
		return nil, err
	}
	return core.NewProgressiveSegments(views, q, opts)
}

// SearchCompressed runs the filter step on 8-bit fragments and refines on
// the exact columns. Sealed segments filter on their codes — built lazily
// once per segment when that segment is first actually searched (skipped
// segments are never quantized), and never invalidated by appends; the
// active segment runs an exact scan. Criteria Hq and Eq.
//
// Deprecated: use Query with StrategyCompressed (or StrategyAuto, which
// picks the compressed path only where the cost model favors it).
func (c *Collection) SearchCompressed(q []float64, opts Options) (CompressedResult, error) {
	spec := plan.SpecFromOptions(q, opts)
	spec.Strategy = StrategyCompressed
	res, err := c.Query(spec)
	if err != nil {
		return CompressedResult{}, err
	}
	return res.Compressed, nil
}

// SearchMIL runs BOND (criterion Hq) through the MIL relational-operator
// engine — the Section 6.1 reference implementation — per segment, with
// the per-segment answers merged exactly.
//
// Deprecated: use Query with StrategyMIL.
func (c *Collection) SearchMIL(q []float64, opts MILOptions) (Result, error) {
	spec := QuerySpec{
		Query:        q,
		K:            opts.K,
		Criterion:    core.Hq,
		Step:         opts.Step,
		BitmapSwitch: opts.BitmapSwitch,
		Exclude:      opts.Exclude,
		Strategy:     StrategyMIL,
	}
	res, err := c.Query(spec)
	if err != nil {
		return Result{}, err
	}
	return Result{Results: res.Results, Stats: res.Stats}, nil
}

// AsFeature wraps a snapshot of the collection as one component of a
// multi-feature query. The snapshot stays consistent if writers mutate
// the collection before the MultiSearch runs.
func (c *Collection) AsFeature(query []float64, weight float64) Feature {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		panic("bond: AsFeature on closed collection with mapped segments")
	}
	return Feature{Segments: c.snapshotViews(), Query: query, Weight: weight}
}

// MultiSearch answers a multi-feature query over several collections
// holding the same objects (Section 8.2), using synchronized BOND. It is
// routed through the plan layer like every other entry point; synchronized
// multi-feature search advances all features in lockstep, so there is no
// per-segment path choice to make.
func MultiSearch(features []Feature, opts MultiOptions) (MultiResult, error) {
	return plan.Multi(features, opts)
}

// NewExclusion returns an empty exclusion bitmap sized to the collection,
// for combining k-NN search with prior selection predicates: set the bits
// of the objects a predicate ruled out and pass it as Options.Exclude.
func (c *Collection) NewExclusion() *bitmap.Bitmap {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return bitmap.New(c.store.Len())
}

// Cluster runs exact k-means over the live vectors with BOND-style
// branch-and-bound assignment on the decomposed columns — the clustering
// direction the paper's Section 9 proposes as future work. The segments
// are flattened into one store for the duration of the clustering (a
// single-segment collection clusters in place, copy-free).
func (c *Collection) Cluster(opts ClusterOptions) (ClusterResult, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if err := c.errIfUnmapped(); err != nil {
		return ClusterResult{}, err
	}
	return cluster.KMeans(c.store.Flatten(), opts)
}

// QueryUsefulness scores a query's expected pruning power in [0, 1]
// (Section 9's query-quality proposal): ~0 for a uniform query on which
// branch-and-bound cannot help, approaching 1 for queries whose mass (or
// weight) concentrates on few dimensions. Pass nil weights for unweighted
// queries.
func QueryUsefulness(q, weights []float64, criterion Criterion) float64 {
	return core.Usefulness(q, weights, criterion)
}

// Package bond is a Go implementation of BOND — Branch-and-bound ON
// Decomposed data — the k-nearest-neighbor search technique of de Vries,
// Mamoulis, Nes and Kersten, "Efficient k-NN Search on Vertically
// Decomposed Data", ACM SIGMOD 2002.
//
// A Collection stores N-dimensional feature vectors vertically decomposed:
// one column per dimension plus a per-vector total. k-NN queries are
// answered by scanning columns in a query-dependent order and pruning
// vectors branch-and-bound style as partial scores accumulate, which on
// skewed real-world data (color histograms, clustered embeddings) touches
// a small fraction of the data a sequential scan would read.
//
// Basic use:
//
//	col := bond.NewCollection(vectors)          // vectors: [][]float64
//	res, err := col.Search(query, bond.Options{K: 10, Criterion: bond.Hq})
//
// Supported query classes (all exact):
//
//   - histogram-intersection similarity (criteria Hq, Hh),
//   - squared Euclidean distance (criteria Eq, Ev),
//   - weighted Euclidean and dimensional-subspace queries,
//   - filter-and-refine search on 8-bit compressed fragments,
//   - multi-feature queries across several collections (see MultiSearch).
//
// Collections persist to a checksummed binary format (Save/Open), support
// appends and bitmap-marked deletes, and can be compacted in place.
package bond

import (
	"bond/internal/bitmap"
	"bond/internal/cluster"
	"bond/internal/core"
	"bond/internal/multifeature"
	"bond/internal/quant"
	"bond/internal/topk"
	"bond/internal/vstore"
)

// Re-exported search types. See package core for the full documentation of
// each criterion, ordering, and option.
type (
	// Options configures a Search. Zero value + K is a sensible default
	// (criterion Hq, descending-query order, step 8).
	Options = core.Options
	// Criterion selects pruning rule and metric.
	Criterion = core.Criterion
	// Order selects the dimension processing order.
	Order = core.Order
	// Result is a completed search with work statistics.
	Result = core.Result
	// CompressedResult is a completed filter-and-refine search.
	CompressedResult = core.CompressedResult
	// Neighbor is one scored match.
	Neighbor = topk.Result
	// Stats describes the work a search performed.
	Stats = core.Stats
	// MILOptions configures the MIL reference engine.
	MILOptions = core.MILOptions
	// Feature is one component of a multi-feature query.
	Feature = multifeature.Feature
	// Aggregate combines per-feature similarities.
	Aggregate = multifeature.Aggregate
	// MultiOptions configures a multi-feature search.
	MultiOptions = multifeature.Options
	// MultiResult is a completed multi-feature search.
	MultiResult = multifeature.Result
	// ClusterOptions configures k-means over the decomposed collection.
	ClusterOptions = cluster.Options
	// ClusterResult is a completed clustering.
	ClusterResult = cluster.Result
)

// Pruning criteria (Section 4 of the paper).
const (
	// Hq: histogram intersection, query-only bounds. The paper's best
	// all-round criterion.
	Hq = core.Hq
	// Hh: histogram intersection, per-vector bounds (tighter, more
	// bookkeeping).
	Hh = core.Hh
	// Eq: squared Euclidean distance, constant bounds.
	Eq = core.Eq
	// Ev: squared Euclidean distance, per-vector bounds.
	Ev = core.Ev
)

// Dimension orderings (Section 5.1).
const (
	OrderQueryDesc = core.OrderQueryDesc
	OrderQueryAsc  = core.OrderQueryAsc
	OrderRandom    = core.OrderRandom
	OrderNatural   = core.OrderNatural
)

// Aggregates for multi-feature queries (Section 8.2).
const (
	WeightedAvg = multifeature.WeightedAvg
	MinAgg      = multifeature.MinAgg
	MaxAgg      = multifeature.MaxAgg
)

// Collection is a vertically decomposed vector collection with optional
// 8-bit compressed fragments.
type Collection struct {
	store *vstore.Store
	codes *vstore.QuantStore
}

// NewCollection decomposes a row-major collection. It panics on empty or
// ragged input (programmer error); use New plus Add for incremental builds.
func NewCollection(vectors [][]float64) *Collection {
	return &Collection{store: vstore.FromVectors(vectors)}
}

// New returns an empty collection of the given dimensionality.
func New(dims int) *Collection {
	return &Collection{store: vstore.New(dims)}
}

// Open loads a collection previously written by Save.
func Open(path string) (*Collection, error) {
	s, err := vstore.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Collection{store: s}, nil
}

// Save writes the collection to path in the checksummed binary format.
// Compressed fragments are rebuilt on demand and are not persisted.
func (c *Collection) Save(path string) error { return c.store.SaveFile(path) }

// Dims returns the dimensionality.
func (c *Collection) Dims() int { return c.store.Dims() }

// Len returns the number of vector slots, including delete-marked ones.
func (c *Collection) Len() int { return c.store.Len() }

// Live returns the number of searchable vectors.
func (c *Collection) Live() int { return c.store.Live() }

// Vector returns a copy of vector id.
func (c *Collection) Vector(id int) []float64 { return c.store.Row(id) }

// Add appends a vector and returns its id. Compressed fragments are
// invalidated and rebuilt on the next compressed search.
func (c *Collection) Add(v []float64) int {
	c.codes = nil
	return c.store.Append(v)
}

// AddBatch appends many vectors, returning the first new id.
func (c *Collection) AddBatch(vectors [][]float64) int {
	c.codes = nil
	return c.store.AppendBatch(vectors)
}

// Delete marks vector id as deleted; it is skipped by every search until
// Compact removes it physically.
func (c *Collection) Delete(id int) { c.store.Delete(id) }

// Compact removes delete-marked vectors, returning the old-id → new-id
// mapping (−1 for removed ids).
func (c *Collection) Compact() []int {
	c.codes = nil
	return c.store.Reorganize()
}

// Search runs BOND and returns the exact K best matches for q.
func (c *Collection) Search(q []float64, opts Options) (Result, error) {
	return core.Search(c.store, q, opts)
}

// SearchParallel runs BOND over shards of the collection concurrently and
// merges the results; the answer is identical to Search.
func (c *Collection) SearchParallel(q []float64, opts Options, shards int) (Result, error) {
	return core.SearchParallel(c.store, q, opts, shards)
}

// Progressive is an incremental search whose steps the caller drives,
// with the shrinking candidate set inspectable in between.
type Progressive = core.Progressive

// SearchProgressive prepares an incremental search; call Step until it
// returns false (or stop early) and Finish for the exact results.
func (c *Collection) SearchProgressive(q []float64, opts Options) (*Progressive, error) {
	return core.NewProgressive(c.store, q, opts)
}

// SearchCompressed runs the filter step on 8-bit fragments (built lazily on
// first use) and refines on the exact columns. Criteria Hq and Eq.
func (c *Collection) SearchCompressed(q []float64, opts Options) (CompressedResult, error) {
	if c.codes == nil {
		c.codes = c.store.Quantize(quant.NewUnit())
	}
	return core.SearchCompressed(c.store, c.codes, q, opts)
}

// SearchMIL runs BOND (criterion Hq) through the MIL relational-operator
// engine — the Section 6.1 reference implementation.
func (c *Collection) SearchMIL(q []float64, opts MILOptions) (Result, error) {
	return core.SearchMIL(c.store, q, opts)
}

// AsFeature wraps the collection as one component of a multi-feature query.
func (c *Collection) AsFeature(query []float64, weight float64) Feature {
	return Feature{Store: c.store, Query: query, Weight: weight}
}

// MultiSearch answers a multi-feature query over several collections
// holding the same objects (Section 8.2), using synchronized BOND.
func MultiSearch(features []Feature, opts MultiOptions) (MultiResult, error) {
	return multifeature.Search(features, opts)
}

// NewExclusion returns an empty exclusion bitmap sized to the collection,
// for combining k-NN search with prior selection predicates: set the bits
// of the objects a predicate ruled out and pass it as Options.Exclude.
func (c *Collection) NewExclusion() *bitmap.Bitmap { return bitmap.New(c.store.Len()) }

// Cluster runs exact k-means over the live vectors with BOND-style
// branch-and-bound assignment on the decomposed columns — the clustering
// direction the paper's Section 9 proposes as future work.
func (c *Collection) Cluster(opts ClusterOptions) (ClusterResult, error) {
	return cluster.KMeans(c.store, opts)
}

// QueryUsefulness scores a query's expected pruning power in [0, 1]
// (Section 9's query-quality proposal): ~0 for a uniform query on which
// branch-and-bound cannot help, approaching 1 for queries whose mass (or
// weight) concentrates on few dimensions. Pass nil weights for unweighted
// queries.
func QueryUsefulness(q, weights []float64, criterion Criterion) float64 {
	return core.Usefulness(q, weights, criterion)
}

module bond

go 1.24

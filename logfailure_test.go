package bond

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"bond/internal/iofs"
)

// flakyFS wraps a MemFS and, while tripped, fails every write and sync
// on WAL files — a transient ENOSPC-style fault confined to the log.
type flakyFS struct {
	*iofs.MemFS
	failWAL atomic.Bool
}

var errDiskFull = errors.New("flakyfs: no space left on device")

func (f *flakyFS) Create(name string) (iofs.File, error) {
	h, err := f.MemFS.Create(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: h, fs: f, wal: strings.Contains(name, "wal-")}, nil
}

func (f *flakyFS) Append(name string) (iofs.File, error) {
	h, err := f.MemFS.Append(name)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: h, fs: f, wal: strings.Contains(name, "wal-")}, nil
}

type flakyFile struct {
	iofs.File
	fs  *flakyFS
	wal bool
}

func (h *flakyFile) Write(p []byte) (int, error) {
	if h.wal && h.fs.failWAL.Load() {
		return 0, errDiskFull
	}
	return h.File.Write(p)
}

func (h *flakyFile) Sync() error {
	if h.wal && h.fs.failWAL.Load() {
		return errDiskFull
	}
	return h.File.Sync()
}

// TestCheckpointSelfHealsAfterLogFailure: a transient log failure (disk
// full) rejects mutations — correctly, none are acknowledged — and once
// the fault clears, the next Checkpoint writes the consistent in-memory
// state past the broken log and the collection accepts writes again, no
// restart needed. Durability of the survivors is verified by a reopen.
func TestCheckpointSelfHealsAfterLogFailure(t *testing.T) {
	fs := &flakyFS{MemFS: iofs.NewMemFS()}
	c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: 2, SegmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDurable([]float64{0.1, 0.2}); err != nil {
		t.Fatal(err)
	}

	fs.failWAL.Store(true)
	if _, err := c.AddDurable([]float64{0.3, 0.4}); err == nil {
		t.Fatal("write during disk failure was acknowledged")
	}
	fs.failWAL.Store(false)
	// The writer's error is sticky: still rejecting, even though the
	// disk recovered…
	if _, err := c.AddDurable([]float64{0.5, 0.6}); err == nil {
		t.Fatal("sticky log error did not reject the follow-up write")
	}
	// …until a checkpoint supersedes the broken log.
	if err := c.Checkpoint(); err != nil {
		t.Fatalf("recovery checkpoint: %v", err)
	}
	id, err := c.AddDurable([]float64{0.7, 0.8})
	if err != nil {
		t.Fatalf("write after recovery checkpoint: %v", err)
	}
	if id != 1 || c.Len() != 2 {
		t.Fatalf("post-recovery shape: id %d len %d (rejected writes must not occupy slots)", id, c.Len())
	}
	want := dumpCollection(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenDurable("col", DurableOptions{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got := dumpCollection(r); !sameDump(got, want) {
		t.Fatalf("reopen after log-failure recovery diverged:\n got %+v\nwant %+v", got, want)
	}
}

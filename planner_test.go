package bond

import (
	"math/rand"
	"testing"

	"bond/internal/topk"
)

// oracleScan is the sequential-scan oracle of the planner property test:
// exact scores over the live vectors, ranked with the same
// score-then-id tie-break every engine path uses.
func oracleScan(vectors [][]float64, deleted map[int]bool, q []float64, k int, dist bool) []topk.Result {
	var h *topk.Heap
	if dist {
		h = topk.NewSmallest(k)
	} else {
		h = topk.NewLargest(k)
	}
	for id, v := range vectors {
		if deleted[id] {
			continue
		}
		s := 0.0
		for d, x := range v {
			if dist {
				diff := x - q[d]
				s += diff * diff
			} else if x < q[d] {
				s += x
			} else {
				s += q[d]
			}
		}
		h.Push(id, s)
	}
	return h.Results()
}

func assertMatchesOracle(t *testing.T, label string, got []topk.Result, want []topk.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, oracle has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("%s rank %d: id %d, oracle id %d", label, i, got[i].ID, want[i].ID)
		}
		diff := got[i].Score - want[i].Score
		if diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("%s rank %d: score %v, oracle %v", label, i, got[i].Score, want[i].Score)
		}
	}
}

// TestPlannerStrategiesMatchOracle is the planner property test: on
// randomized data, segment layouts, deletions, and queries, every plan
// the planner can emit — each strategy forced in turn, plus auto and the
// parallel fan-out — returns results identical to the sequential-scan
// oracle, as do all six legacy entry points that now delegate to it.
func TestPlannerStrategiesMatchOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 6; trial++ {
		n := 80 + rng.Intn(250)
		dims := 6 + rng.Intn(18)
		segSize := 24 + rng.Intn(60)
		clustered := trial%2 == 0

		vectors := make([][]float64, 0, n)
		center := make([]float64, dims)
		for i := 0; i < n; i++ {
			if clustered && i%segSize == 0 {
				for d := range center {
					center[d] = rng.Float64()
				}
			}
			v := make([]float64, dims)
			for d := range v {
				if clustered {
					x := center[d] + 0.05*(rng.Float64()-0.5)
					if x < 0 {
						x = 0
					}
					if x > 1 {
						x = 1
					}
					v[d] = x
				} else {
					v[d] = rng.Float64()
				}
			}
			vectors = append(vectors, v)
		}
		col := NewCollectionSegmented(vectors, segSize)

		// A few appends land in the mutable active segment, so plans mix
		// sealed paths with the exact-scan fallback.
		extra := 1 + rng.Intn(10)
		for i := 0; i < extra; i++ {
			v := make([]float64, dims)
			for d := range v {
				v[d] = rng.Float64()
			}
			col.Add(v)
			vectors = append(vectors, v)
		}

		deleted := map[int]bool{}
		for i := 0; i < len(vectors)/20; i++ {
			id := rng.Intn(len(vectors))
			col.Delete(id)
			deleted[id] = true
		}

		k := 1 + rng.Intn(12)
		q := vectors[rng.Intn(len(vectors))]

		for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
			want := oracleScan(vectors, deleted, q, k, crit.Distance())

			strategies := []Strategy{StrategyAuto, StrategyBOND, StrategyExact}
			if crit == Hq || crit == Eq {
				strategies = append(strategies, StrategyCompressed, StrategyVAFile)
			}
			if crit == Hq {
				strategies = append(strategies, StrategyMIL)
			}
			for _, strat := range strategies {
				res, err := col.Query(QuerySpec{Query: q, K: k, Criterion: crit, Strategy: strat})
				if err != nil {
					t.Fatalf("trial %d %v/%v: %v", trial, crit, strat, err)
				}
				assertMatchesOracle(t, crit.String()+"/"+strat.String(), res.Results, want)
			}
			// Parallel fan-out plans must merge to the same answer.
			res, err := col.Query(QuerySpec{Query: q, K: k, Criterion: crit, Parallel: 4})
			if err != nil {
				t.Fatalf("trial %d %v/parallel: %v", trial, crit, err)
			}
			assertMatchesOracle(t, crit.String()+"/parallel", res.Results, want)

			// Legacy entry points, now thin wrappers over Query.
			opts := Options{K: k, Criterion: crit}
			sr, err := col.Search(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesOracle(t, crit.String()+"/Search", sr.Results, want)
			sr, err = col.SearchParallel(q, opts, 4)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesOracle(t, crit.String()+"/SearchParallel", sr.Results, want)
			prog, err := col.SearchProgressive(q, opts)
			if err != nil {
				t.Fatal(err)
			}
			assertMatchesOracle(t, crit.String()+"/SearchProgressive", prog.Finish().Results, want)
			if crit == Hq || crit == Eq {
				cr, err := col.SearchCompressed(q, opts)
				if err != nil {
					t.Fatal(err)
				}
				assertMatchesOracle(t, crit.String()+"/SearchCompressed", cr.Results, want)
			}
			if crit == Hq {
				mr, err := col.SearchMIL(q, MILOptions{K: k})
				if err != nil {
					t.Fatal(err)
				}
				assertMatchesOracle(t, "Hq/SearchMIL", mr.Results, want)
				// A single weight-1 histogram feature aggregates to the
				// plain intersection score.
				multi, err := MultiSearch([]Feature{col.AsFeature(q, 1)}, MultiOptions{K: k})
				if err != nil {
					t.Fatal(err)
				}
				assertMatchesOracle(t, "Hq/MultiSearch", multi.Results, want)
			}
		}
	}
}

// TestPlannerModelPersistence checks that learned cost coefficients
// survive Save/Open — the reopened collection plans from its history, not
// the priors.
func TestPlannerModelPersistence(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vectors := make([][]float64, 300)
	for i := range vectors {
		v := make([]float64, 8)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}
	col := NewCollectionSegmented(vectors, 100)
	for i := 0; i < 8; i++ {
		if _, err := col.Query(QuerySpec{Query: vectors[i], K: 5}); err != nil {
			t.Fatal(err)
		}
	}
	learned := col.PlannerStats()
	if learned == (PlannerCoefficients{}) || learned.Queries == 0 {
		t.Fatal("no feedback recorded")
	}

	path := t.TempDir() + "/model.bond"
	if err := col.Save(path); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := re.PlannerStats(); got != learned {
		t.Fatalf("reopened coefficients %+v, want %+v", got, learned)
	}
}

// TestMultiResultOrderIndependence pins the query-result contract the
// planner relies on: forcing each strategy through QueryExplain yields a
// plan whose executed steps report actual costs, and the explain text is
// non-empty before and after execution.
func TestQueryExplainReportsActuals(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vectors := make([][]float64, 400)
	for i := range vectors {
		v := make([]float64, 10)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}
	col := NewCollectionSegmented(vectors, 100)
	res, p, err := col.QueryExplain(QuerySpec{Query: vectors[0], K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 3 {
		t.Fatalf("got %d results", len(res.Results))
	}
	executed := 0
	for _, st := range p.Steps {
		if st.Executed {
			executed++
			if st.ActualCost <= 0 {
				t.Errorf("segment %d executed with actual cost %v", st.Segment, st.ActualCost)
			}
		}
	}
	if executed == 0 {
		t.Fatal("no step executed")
	}
	if p.Explain() == "" {
		t.Fatal("empty explain")
	}
}

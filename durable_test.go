package bond

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"bond/internal/dataset"
	"bond/internal/iofs"
	"bond/internal/seqscan"
	"bond/internal/vstore"
)

// collectionDump is a full logical snapshot of a collection's state —
// what durability must preserve byte-for-byte across crash and
// recovery. Segment boundaries are included because compaction replay
// depends on them.
type collectionDump struct {
	dims, n, live, nseg int
	rows                [][]float64
	deleted             []bool
}

func dumpCollection(c *Collection) collectionDump {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d := collectionDump{
		dims: c.store.Dims(),
		n:    c.store.Len(),
		live: c.store.Live(),
		nseg: c.store.NumSegments(),
	}
	for id := 0; id < d.n; id++ {
		d.rows = append(d.rows, c.store.Row(id))
		d.deleted = append(d.deleted, c.store.IsDeleted(id))
	}
	return d
}

func sameDump(a, b collectionDump) bool { return reflect.DeepEqual(a, b) }

func reopenDurable(t *testing.T, fs iofs.FS, dir string, policy FsyncPolicy) *Collection {
	t.Helper()
	c, err := OpenDurable(dir, DurableOptions{FS: fs, Fsync: policy})
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	return c
}

// TestOpenDurableLifecycle drives the full durable lifecycle on the
// in-memory filesystem: create, mutate, close, reopen, checkpoint,
// mutate, reopen — asserting bit-identical state at every generation.
func TestOpenDurableLifecycle(t *testing.T) {
	fs := iofs.NewMemFS()
	dir := "col.bond"
	c, err := OpenDurable(dir, DurableOptions{FS: fs, Dims: 4, SegmentSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Durable() {
		t.Fatal("OpenDurable produced a non-durable collection")
	}
	vectors := dataset.CorelLike(30, 4, 11)
	for _, v := range vectors[:20] {
		if _, err := c.AddDurable(v); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.AddBatchDurable(vectors[20:]); err != nil {
		t.Fatal(err)
	}
	if ok, err := c.TryDeleteDurable(3); !ok || err != nil {
		t.Fatalf("delete: %v %v", ok, err)
	}
	want := dumpCollection(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddDurable(vectors[0]); !errors.Is(err, ErrClosed) {
		t.Fatalf("mutation after Close: %v", err)
	}

	c2 := reopenDurable(t, fs, dir, FsyncAlways)
	if got := dumpCollection(c2); !sameDump(got, want) {
		t.Fatalf("replay-only reopen diverged:\n got %+v\nwant %+v", got, want)
	}

	// Checkpoint, keep mutating into the fresh WAL, reopen again.
	if err := c2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	ds, ok := c2.WALStats()
	if !ok || ds.WALRecords != 0 || ds.Checkpoints != 1 {
		t.Fatalf("post-checkpoint WAL stats: %+v ok=%v", ds, ok)
	}
	if _, err := c2.CompactRatioDurable(0); err != nil {
		t.Fatal(err)
	}
	if err := c2.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.AddDurable(vectors[1]); err != nil {
		t.Fatal(err)
	}
	want2 := dumpCollection(c2)
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	c3 := reopenDurable(t, fs, dir, FsyncAlways)
	defer c3.Close()
	if got := dumpCollection(c3); !sameDump(got, want2) {
		t.Fatalf("checkpoint+replay reopen diverged")
	}
	// The stats snapshot must expose the durability block.
	if st := c3.StatsSnapshot(); st.Durability == nil || st.Durability.Fsync != "always" {
		t.Fatalf("stats missing durability block: %+v", st.Durability)
	}
}

func TestOpenDurableRequiresDimsToCreate(t *testing.T) {
	fs := iofs.NewMemFS()
	if _, err := OpenDurable("missing", DurableOptions{FS: fs}); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open missing without dims: %v", err)
	}
}

// TestLegacyMigration opens v1 flat and v2 segmented snapshot files with
// OpenDurable and checks they are migrated in place into the durable
// layout with identical contents — the compatibility guarantee for
// pre-WAL store files.
func TestLegacyMigration(t *testing.T) {
	tmp := t.TempDir()
	vectors := dataset.CorelLike(50, 6, 5)

	// v2 segmented file, written by the current Save.
	seg := NewCollectionSegmented(vectors, 16)
	seg.Delete(7)
	segPath := filepath.Join(tmp, "seg.bond")
	if err := seg.Save(segPath); err != nil {
		t.Fatal(err)
	}
	// v1 flat file, as the seed wrote it.
	flat := NewCollection(vectors)
	flatPath := filepath.Join(tmp, "flat.bond")
	if err := saveLegacyFlat(flatPath, vectors); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		path string
		want *Collection
	}{{segPath, seg}, {flatPath, flat}} {
		c, err := OpenDurable(tc.path, DurableOptions{})
		if err != nil {
			t.Fatalf("migrate %s: %v", tc.path, err)
		}
		info, err := os.Stat(tc.path)
		if err != nil || !info.IsDir() {
			t.Fatalf("migration left %s as a non-directory: %v", tc.path, err)
		}
		if c.Len() != tc.want.Len() || c.Live() != tc.want.Live() || c.Dims() != tc.want.Dims() {
			t.Fatalf("migrated shape %d/%d×%d, want %d/%d×%d",
				c.Len(), c.Live(), c.Dims(), tc.want.Len(), tc.want.Live(), tc.want.Dims())
		}
		for id := 0; id < c.Len(); id++ {
			got, _ := c.TryVector(id)
			if !reflect.DeepEqual(got, tc.want.Vector(id)) {
				t.Fatalf("%s: vector %d differs after migration", tc.path, id)
			}
		}
		// The migrated collection must accept durable writes and survive a
		// reopen.
		if _, err := c.AddDurable(vectors[0]); err != nil {
			t.Fatal(err)
		}
		want := dumpCollection(c)
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		c2, err := OpenDurable(tc.path, DurableOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := dumpCollection(c2); !sameDump(got, want) {
			t.Fatalf("%s: reopen after migration diverged", tc.path)
		}
		c2.Close()
	}
}

// saveLegacyFlat writes the seed's v1 flat format directly through the
// flat store's writer.
func saveLegacyFlat(path string, vectors [][]float64) error {
	return vstore.FromVectors(vectors).SaveFile(path)
}

// TestDurableLifecycleProperty is the randomized lifecycle property
// test: a random interleaving of Add/AddBatch/Delete/Compact/Seal/
// Checkpoint/Close+Reopen runs against a plain in-memory mirror
// collection receiving the same mutations, and after every reopen the
// recovered state must equal the mirror bit-for-bit while concurrent
// queries (exact results pinned to the seqscan oracle) race the next
// mutations. Run under -race in CI.
func TestDurableLifecycleProperty(t *testing.T) {
	const (
		dims    = 5
		segSize = 16
		ops     = 400
	)
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fs := iofs.NewMemFS()
			c, err := OpenDurable("col", DurableOptions{FS: fs, Dims: dims, SegmentSize: segSize, Fsync: FsyncNever})
			if err != nil {
				t.Fatal(err)
			}
			mirror := NewSegmented(dims, segSize)

			var wg sync.WaitGroup
			stopQueries := func() {}
			startQueries := func() {
				stop := make(chan struct{})
				q := randVector(rng, dims) // drawn before the goroutine: rng is not shared
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						res, qerr := c.Query(QuerySpec{Query: q, K: 3, Criterion: Hq, Strategy: StrategyExact})
						if qerr != nil {
							t.Errorf("concurrent query: %v", qerr)
							return
						}
						_ = res
					}
				}()
				stopQueries = func() { close(stop); wg.Wait() }
			}

			apply := func(op func(col *Collection) error) {
				if err := op(c); err != nil {
					t.Fatalf("durable op: %v", err)
				}
				if err := op(mirror); err != nil {
					t.Fatalf("mirror op: %v", err)
				}
			}
			for i := 0; i < ops; i++ {
				switch r := rng.Float64(); {
				case r < 0.45:
					v := randVector(rng, dims)
					apply(func(col *Collection) error { _, e := col.AddDurable(v); return e })
				case r < 0.60:
					batch := make([][]float64, 1+rng.Intn(6))
					for j := range batch {
						batch[j] = randVector(rng, dims)
					}
					apply(func(col *Collection) error { _, e := col.AddBatchDurable(batch); return e })
				case r < 0.75:
					if n := c.Len(); n > 0 {
						id := rng.Intn(n)
						apply(func(col *Collection) error { _, e := col.TryDeleteDurable(id); return e })
					}
				case r < 0.85:
					ratio := rng.Float64() * 0.5
					apply(func(col *Collection) error { _, e := col.CompactRatioDurable(ratio); return e })
				case r < 0.90:
					apply(func(col *Collection) error { return col.SealActiveDurable() })
				case r < 0.95:
					if err := c.Checkpoint(); err != nil {
						t.Fatal(err)
					}
				default:
					stopQueries()
					want := dumpCollection(c)
					if err := c.Close(); err != nil {
						t.Fatal(err)
					}
					c = reopenDurable(t, fs, "col", FsyncNever)
					if got := dumpCollection(c); !sameDump(got, want) {
						t.Fatalf("op %d: reopen diverged from pre-close state", i)
					}
					startQueries()
				}
			}
			stopQueries()

			got, want := dumpCollection(c), dumpCollection(mirror)
			if !sameDump(got, want) {
				t.Fatalf("final state diverged from in-memory mirror:\n got %+v\nwant %+v", got, want)
			}
			// Pin a final query to the sequential-scan oracle.
			var live [][]float64
			var liveIDs []int
			for id, row := range got.rows {
				if !got.deleted[id] {
					live = append(live, row)
					liveIDs = append(liveIDs, id)
				}
			}
			if len(live) > 0 {
				q := randVector(rng, dims)
				oracle, _ := seqscan.SearchHistogram(live, q, 3)
				res, err := c.Query(QuerySpec{Query: q, K: 3, Criterion: Hq})
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Results) != len(oracle) {
					t.Fatalf("query k: %d vs oracle %d", len(res.Results), len(oracle))
				}
				for j := range oracle {
					if res.Results[j].Score != oracle[j].Score || res.Results[j].ID != liveIDs[oracle[j].ID] {
						t.Fatalf("rank %d: got (%d,%g) oracle (%d,%g)",
							j, res.Results[j].ID, res.Results[j].Score, liveIDs[oracle[j].ID], oracle[j].Score)
					}
				}
			}
			c.Close()
		})
	}
}

func randVector(rng *rand.Rand, dims int) []float64 {
	v := make([]float64, dims)
	for d := range v {
		v[d] = rng.Float64()
	}
	return v
}

package bond

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"bond/internal/iofs"
	"bond/internal/repl"
	"bond/internal/vstore"
	"bond/internal/wal"
)

// Replication: a leader serves its CRC-framed WAL as a byte stream
// (ReplChunk) plus checkpoint snapshots for bootstrap (ReplSnapshot); a
// follower mirrors the stream verbatim into its own log and applies
// each record through the same replay path recovery uses
// (ApplyReplChunk), so follower state is byte-identical to the leader
// at every applied offset. A follower's resume position after any
// interruption — including a crash — is simply what its own recovery
// reports (ReplPosition): the log and the in-memory state never
// diverge, because a record is validated, then logged, then applied.

var (
	// ErrReplGone reports that the requested stream position was
	// garbage-collected by a leader checkpoint; the follower must
	// re-bootstrap from a fresh snapshot.
	ErrReplGone = errors.New("bond: replication position gone")
	// ErrReplDiverged reports a stream position or record that cannot
	// belong to this replica's history — the replica is fenced, never
	// silently patched.
	ErrReplDiverged = errors.New("bond: replica diverged")
)

// replChunkDefault is a chunk's payload size when the follower does not
// ask for one; replChunkMax is the hard cap. The cap must admit any
// single frame (an ingest batch is one frame, bounded by the serving
// layer's body cap), because a follower that gets a full chunk with no
// complete frame in it retries with a doubled max.
const (
	replChunkDefault = 1 << 20
	replChunkMax     = 1 << 28
)

// bootstrapSuffix stages a snapshot install next to the target
// directory. Unlike migratingSuffix it is never auto-resumed: a
// half-written staging tree is discarded and bootstrap re-runs.
const bootstrapSuffix = ".bootstrap"

// ReplPosition returns the collection's current stream position: the
// live WAL generation and its acknowledged byte size. On a follower
// this is exactly where tailing must resume; on a leader it is the
// stream's high-water mark.
func (c *Collection) ReplPosition() (repl.Position, error) {
	if c.dur == nil {
		return repl.Position{}, ErrNotDurable
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur.closed {
		return repl.Position{}, ErrClosed
	}
	return repl.Position{Seq: c.dur.walSeq, Off: c.dur.w.Size()}, nil
}

// ReplChunk serves one slice of the replication stream starting at
// (seq, from): up to max bytes of acknowledged WAL bytes (the slice
// may end mid-frame when a frame straddles max; the follower holds the
// torn tail and the next chunk completes it). A request at the live
// position returns an empty chunk (the follower is caught up); a
// request for a completed older generation sets Rotated once its end
// is reached; a request for a generation a checkpoint already deleted
// fails with ErrReplGone; a position the leader never produced fails
// with ErrReplDiverged. Caught-up polls — the steady state of every
// follower — touch no file at all, and partial reads are windowed
// (iofs.ReadFileRange), not whole-file.
func (c *Collection) ReplChunk(seq uint64, from int64, max int) (repl.Chunk, error) {
	if c.dur == nil {
		return repl.Chunk{}, ErrNotDurable
	}
	if max <= 0 {
		max = replChunkDefault
	}
	if max > replChunkMax {
		max = replChunkMax
	}
	if from < wal.HeaderLen {
		return repl.Chunk{}, fmt.Errorf("%w: offset %d before log header", ErrReplDiverged, from)
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur.closed {
		return repl.Chunk{}, ErrClosed
	}
	cur := repl.Position{Seq: c.dur.walSeq, Off: c.dur.w.Size()}
	ch := repl.Chunk{Seq: seq, From: from, Leader: cur}
	name := filepath.Join(c.dur.dir, vstore.WALFileName(seq))
	if seq > cur.Seq {
		return repl.Chunk{}, fmt.Errorf("%w: requested wal-%d, leader at wal-%d", ErrReplDiverged, seq, cur.Seq)
	}
	if seq == cur.Seq {
		// Serve only up to the acknowledged size: bytes past it (none
		// today — a failed fsync rolls the gauge back) must never ship.
		end := cur.Off
		if from > end {
			return repl.Chunk{}, fmt.Errorf("%w: offset %d past leader position %d", ErrReplDiverged, from, end)
		}
		if from == end {
			return ch, nil // caught up: no file I/O
		}
		data, err := iofs.ReadFileRange(c.dur.fs, name, from, min(end, from+int64(max))-from)
		if err != nil {
			return repl.Chunk{}, err
		}
		ch.Data = data
		return ch, nil
	}

	// Older generation.
	rotEnd, rotated := c.dur.rotations[seq]
	if rotated {
		if from > rotEnd {
			return repl.Chunk{}, fmt.Errorf("%w: offset %d past end %d of wal-%d", ErrReplDiverged, from, rotEnd, seq)
		}
		if from == rotEnd {
			// The follower consumed the whole generation: tell it to
			// rotate without touching the (possibly checkpoint-deleted)
			// file.
			ch.Rotated = true
			return ch, nil
		}
	}
	end := rotEnd
	if !rotated {
		fi, err := c.dur.fs.Stat(name)
		if err != nil {
			// Checkpoint-deleted and its endpoint unrecorded (leader
			// restart): the bytes are gone, the follower re-bootstraps.
			return repl.Chunk{}, fmt.Errorf("%w: wal-%d deleted by checkpoint", ErrReplGone, seq)
		}
		end = fi.Size
		if from > end {
			return repl.Chunk{}, fmt.Errorf("%w: offset %d past end %d of wal-%d", ErrReplDiverged, from, end, seq)
		}
	}
	to := min(end, from+int64(max))
	data, err := iofs.ReadFileRange(c.dur.fs, name, from, to-from)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			// Deleted between the rotations lookup and the read.
			return repl.Chunk{}, fmt.Errorf("%w: wal-%d deleted by checkpoint", ErrReplGone, seq)
		}
		return repl.Chunk{}, err
	}
	ch.Data = data
	ch.Rotated = from+int64(len(data)) == end
	return ch, nil
}

// ReplSnapshot checkpoints the collection and packages the freshly
// committed durable files for follower bootstrap. Holding the
// checkpoint mutex across the capture guarantees the files read are
// exactly the ones the checkpoint wrote, so a bootstrapped follower is
// byte-identical to the leader at the snapshot's position — the start
// of the WAL generation the checkpoint rotated to.
func (c *Collection) ReplSnapshot() (*repl.Snapshot, error) {
	if c.dur == nil {
		return nil, ErrNotDurable
	}
	c.dur.ckptMu.Lock()
	defer c.dur.ckptMu.Unlock()
	if err := c.checkpointLocked(); err != nil {
		return nil, err
	}
	c.mu.RLock()
	seq := c.dur.walSeq
	fs, dir := c.dur.fs, c.dur.dir
	c.mu.RUnlock()

	files := make(map[string][]byte)
	raw, err := fs.ReadFile(filepath.Join(dir, vstore.ManifestName))
	if err != nil {
		return nil, err
	}
	m, err := vstore.DecodeManifest(raw)
	if err != nil {
		return nil, err
	}
	if m.WALSeq != seq {
		return nil, fmt.Errorf("bond: snapshot manifest at wal-%d, expected wal-%d", m.WALSeq, seq)
	}
	files[vstore.ManifestName] = raw
	for _, seg := range m.Segments {
		name := vstore.SegFileName(seg.ID)
		data, err := fs.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		files[name] = data
	}
	active := vstore.ActiveFileName(seq)
	data, err := fs.ReadFile(filepath.Join(dir, active))
	if err != nil {
		return nil, err
	}
	files[active] = data
	snap := &repl.Snapshot{
		Position: repl.Position{Seq: seq, Off: wal.HeaderLen},
		Files:    files,
	}
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	return snap, nil
}

// ApplyReplChunk applies one streamed chunk to a follower: each
// complete frame is re-validated, staged against the current state,
// appended verbatim to the follower's own log (fsynced under
// FsyncAlways), and only then applied — so the log and the in-memory
// state stay in lockstep through any crash. Overlap with already-
// applied bytes is skipped (chunks are idempotent); a gap, a frame the
// state cannot accept, or a chunk for the wrong generation fails with
// ErrReplDiverged; a torn tail is not an error — the next chunk
// completes it. The chunk's Rotated flag is the caller's cue to
// Checkpoint afterwards, mirroring the leader's rotation.
func (c *Collection) ApplyReplChunk(ch repl.Chunk) error {
	if c.dur == nil {
		return ErrNotDurable
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur.closed {
		return ErrClosed
	}
	if ch.Seq != c.dur.walSeq {
		return fmt.Errorf("%w: chunk for wal-%d, replica at wal-%d", ErrReplDiverged, ch.Seq, c.dur.walSeq)
	}
	pos := c.dur.w.Size()
	if ch.From > pos {
		return fmt.Errorf("%w: chunk starts at %d, replica at %d (gap)", ErrReplDiverged, ch.From, pos)
	}
	data := ch.Data
	if skip := pos - ch.From; skip > 0 {
		if skip >= int64(len(data)) {
			return nil
		}
		data = data[skip:]
	}
	syncNow := c.dur.policy == FsyncAlways
	for len(data) > 0 {
		rec, n, err := wal.ParseFrame(data)
		if err != nil {
			if wal.IsTorn(err) {
				return nil
			}
			return fmt.Errorf("%w: %v", ErrReplDiverged, err)
		}
		apply, serr := stageRecord(c.store, rec)
		if serr != nil {
			return fmt.Errorf("%w: %v", ErrReplDiverged, serr)
		}
		if err := c.dur.w.AppendRaw(data[:n], syncNow); err != nil {
			return err
		}
		c.invalidatePlanCache()
		apply()
		data = data[n:]
	}
	return nil
}

// stageRecord validates rec against the store and returns the closure
// that applies it — guaranteed not to fail — so the caller can slot the
// WAL append between validation and application. The checks mirror
// applyRecord's.
func stageRecord(s *vstore.SegStore, rec wal.Record) (apply func(), err error) {
	switch rec.Type {
	case wal.TypeAdd, wal.TypeAddBatch:
		for _, v := range rec.Vectors {
			if len(v) != s.Dims() {
				return nil, fmt.Errorf("logged vector has %d dims, store has %d", len(v), s.Dims())
			}
		}
		return func() { s.AppendBatch(rec.Vectors) }, nil
	case wal.TypeDelete:
		if rec.ID >= uint64(s.Len()) {
			return nil, fmt.Errorf("logged delete of id %d outside [0,%d)", rec.ID, s.Len())
		}
		return func() { s.Delete(int(rec.ID)) }, nil
	case wal.TypeCompact:
		return func() { s.Compact(rec.Ratio) }, nil
	case wal.TypeSeal:
		return func() { s.SealActive() }, nil
	case wal.TypeRecluster:
		if rec.K < 1 {
			return nil, fmt.Errorf("recluster record with k=0")
		}
		flat := s.FlattenSealed()
		if flat == nil || flat.Live() == 0 {
			return nil, fmt.Errorf("recluster record on a store with no sealed live vectors")
		}
		groups, gerr := reclusterGroups(flat, rec.K, rec.Seed)
		if gerr != nil {
			return nil, gerr
		}
		return func() { s.Repartition(groups) }, nil
	default:
		return nil, fmt.Errorf("unknown record type %d", rec.Type)
	}
}

// BootstrapReplica materializes a follower's durable directory from a
// leader snapshot and opens it. The install is crash-safe: the tree is
// fully staged under path+".bootstrap" (every file written atomically),
// only then is any existing directory removed and the staging renamed
// into place. A crash mid-stage leaves the old state (or nothing)
// behind and the staging is discarded on the next attempt; a crash
// between remove and rename leaves a complete staging tree that the
// next bootstrap rebuilds from a fresh snapshot — never a half-written
// directory recovery could misread.
func BootstrapReplica(path string, snap *repl.Snapshot, opts DurableOptions) (*Collection, error) {
	if err := snap.Validate(); err != nil {
		return nil, err
	}
	fs := opts.FS
	if fs == nil {
		fs = iofs.OS{}
	}
	tmp := path + bootstrapSuffix
	_ = fs.RemoveAll(tmp)
	if err := fs.MkdirAll(tmp); err != nil {
		return nil, err
	}
	names := make([]string, 0, len(snap.Files))
	for name := range snap.Files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		data := snap.Files[name]
		err := iofs.WriteFileAtomic(fs, filepath.Join(tmp, name), func(w io.Writer) error {
			_, werr := w.Write(data)
			return werr
		})
		if err != nil {
			return nil, err
		}
	}
	w, err := wal.Create(fs, filepath.Join(tmp, vstore.WALFileName(snap.Position.Seq)))
	if err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	if err := fs.RemoveAll(path); err != nil {
		return nil, err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return nil, err
	}
	if err := fs.SyncDir(filepath.Dir(path)); err != nil {
		return nil, err
	}
	return OpenDurable(path, opts)
}

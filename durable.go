package bond

// This file threads crash-safe durability through Collection: a
// write-ahead log (package wal) that records every mutation before it is
// acknowledged, and incremental checkpoints (package vstore's durable
// directory layout) that bound the log's replay cost without ever
// rewriting sealed segment files.
//
// The recovery contract, proven by the crash-injection matrix in
// crash_test.go:
//
//   - With FsyncAlways, no acknowledged mutation is ever lost: the
//     record is fsynced before the mutating call returns.
//   - Whatever the fsync policy and wherever the crash lands — mid-WAL
//     record, mid-checkpoint, between a manifest's write and its rename
//     — recovery succeeds and yields a consistent prefix of the
//     acknowledged mutation history. A torn final record is discarded;
//     a mutation can never surface partially.
//
// The checkpoint protocol: under the collection's write lock the WAL is
// fsynced and rotated to wal-<seq+1> and the store captured; outside the
// lock the capture is written (new sealed segment files once each, the
// active segment, then the manifest — whose rename is the commit point)
// and the old WAL deleted. A crash before the commit recovers from the
// old manifest plus both WAL files; after it, from the new manifest plus
// the new WAL. Mutations keep flowing into the new WAL while the
// checkpoint writes.

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"bond/internal/iofs"
	"bond/internal/plan"
	"bond/internal/vstore"
	"bond/internal/wal"
)

// FsyncPolicy selects when a durable collection fsyncs its write-ahead
// log.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs every record before the mutation is
	// acknowledged: no acknowledged write can be lost, even to power
	// failure. The slowest and only fully safe policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval fsyncs on a background ticker (DurableOptions.
	// SyncEvery): a crash can lose at most the last interval's
	// acknowledged writes, but recovery still yields a consistent prefix.
	FsyncInterval
	// FsyncNever leaves flushing to the operating system: fastest,
	// survives process crashes (the page cache persists) but not power
	// loss — recovery still yields a consistent prefix.
	FsyncNever
)

// String returns the policy name as the CLIs spell it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("FsyncPolicy(%d)", int(p))
}

// ParseFsync parses a policy name (always, interval, never) as the CLIs
// and bondd's -fsync flag spell it.
func ParseFsync(s string) (FsyncPolicy, error) {
	switch s {
	case "always", "":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("bond: unknown fsync policy %q (want always, interval, or never)", s)
}

// DurableOptions configures OpenDurable.
type DurableOptions struct {
	// Dims is the dimensionality used when the path does not exist yet
	// and a fresh collection must be created. Opening an existing
	// collection ignores it; opening a missing path with Dims == 0 fails
	// with os.ErrNotExist.
	Dims int
	// SegmentSize is the seal threshold for a freshly created collection
	// (0 = the library default).
	SegmentSize int
	// Fsync is the WAL flush policy. The zero value is FsyncAlways.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval ticker period (0 = 100ms).
	SyncEvery time.Duration
	// FS overrides the filesystem every byte of durable state moves
	// through — the crash-injection seam. nil selects the real one.
	FS iofs.FS
	// DisableMmap forces sealed segment files to be read into the heap
	// instead of memory-mapped. Mapping already degrades to a heap read
	// when the filesystem or platform cannot map (MemFS, crashfs, exotic
	// OSes); this is the operator override. The BOND_NO_MMAP environment
	// variable, when non-empty, forces it globally.
	DisableMmap bool
}

// Errors of the durability layer.
var (
	// ErrNotDurable reports a durability operation on a collection that
	// was not opened with OpenDurable.
	ErrNotDurable = errors.New("bond: collection is not durable")
	// ErrClosed reports a mutation or checkpoint after Close.
	ErrClosed = errors.New("bond: collection is closed")
)

// migratingSuffix marks the staging directory of an in-flight legacy
// file migration; OpenDurable completes an interrupted one on the next
// open.
const migratingSuffix = ".migrating"

// durability is the durable state hanging off a Collection opened with
// OpenDurable. The WAL writer pointer and sequence are guarded by the
// collection's lock (writers append under the write lock; Checkpoint
// rotates under it).
type durability struct {
	fs     iofs.FS
	dir    string
	policy FsyncPolicy

	w      *wal.Writer
	walSeq uint64
	closed bool

	// rotations remembers the final byte size of recently rotated-out
	// WAL generations (guarded by the collection lock). A replica that
	// consumed an old generation completely asks for its next byte after
	// the file is checkpoint-deleted; the recorded endpoint lets the
	// leader answer "that log is complete, rotate" instead of forcing a
	// snapshot re-bootstrap. In-memory only — after a leader restart a
	// follower parked exactly on a deleted boundary re-bootstraps, which
	// is correct, just slower.
	rotations map[uint64]int64

	// ckptMu serializes checkpoints; mutations proceed under the
	// collection lock while a checkpoint writes outside it.
	ckptMu sync.Mutex

	checkpoints  int64
	lastCkptUnix int64

	// Interval-policy sync loop lifecycle.
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// DurabilityStats is the durability gauge block a stats endpoint serves:
// the current WAL's size (replay cost of a crash right now) and the
// checkpoint history.
type DurabilityStats struct {
	Fsync              string `json:"fsync"`
	WALSeq             uint64 `json:"wal_seq"`
	WALBytes           int64  `json:"wal_bytes"`
	WALRecords         int64  `json:"wal_records"`
	Checkpoints        int64  `json:"checkpoints"`
	LastCheckpointUnix int64  `json:"last_checkpoint_unix,omitempty"`
}

// OpenDurable opens (or creates) a crash-safe collection rooted at path
// — a directory holding an incremental checkpoint (manifest, write-once
// sealed segment files, active-segment checkpoint) plus the write-ahead
// log of mutations since. Recovery loads the last committed checkpoint
// and replays the WAL tail, discarding a torn final record, so the
// result is always a consistent prefix of the acknowledged history —
// exactly all of it under FsyncAlways.
//
// A path holding a legacy snapshot file (any format Open understands,
// including the v1 flat and v2 segmented layouts) is migrated in place
// into the durable layout; the migration itself is crash-safe and
// resumes on the next OpenDurable if interrupted.
//
// A missing path is created when opts.Dims ≥ 1 and fails with
// os.ErrNotExist otherwise. Callers must Close the collection to stop
// the interval-sync loop and release the log.
func OpenDurable(path string, opts DurableOptions) (*Collection, error) {
	fs := opts.FS
	if fs == nil {
		fs = iofs.OS{}
	}
	if opts.SyncEvery <= 0 {
		opts.SyncEvery = 100 * time.Millisecond
	}
	if _, err := fs.Stat(path); err != nil {
		// Complete an interrupted legacy migration: the staging tree is
		// fully written before the legacy file is removed, so renaming it
		// into place finishes the job.
		if _, merr := fs.Stat(path + migratingSuffix); merr == nil {
			if rerr := fs.Rename(path+migratingSuffix, path); rerr != nil {
				return nil, fmt.Errorf("bond: resume migration of %s: %w", path, rerr)
			}
		}
	}
	info, err := fs.Stat(path)
	switch {
	case err != nil:
		if opts.Dims < 1 {
			return nil, fmt.Errorf("bond: open durable %s: %w (set DurableOptions.Dims to create)", path, os.ErrNotExist)
		}
		store := vstore.NewSegmented(opts.Dims, opts.SegmentSize)
		if err := initDurableDir(fs, path, store, nil); err != nil {
			return nil, err
		}
		return openDurableDir(fs, path, opts)
	case !info.IsDir:
		if err := migrateLegacy(fs, path); err != nil {
			return nil, err
		}
		return openDurableDir(fs, path, opts)
	default:
		return openDurableDir(fs, path, opts)
	}
}

// initDurableDir writes the initial checkpoint (WAL sequence 1) and an
// empty wal-1 into dir.
func initDurableDir(fs iofs.FS, dir string, store *vstore.SegStore, plannerStats []byte) error {
	cs := store.CaptureCheckpoint(1, plannerStats)
	if err := vstore.WriteCheckpoint(fs, dir, cs); err != nil {
		return err
	}
	w, err := wal.Create(fs, filepath.Join(dir, vstore.WALFileName(1)))
	if err != nil {
		return err
	}
	return w.Close()
}

// migrateLegacy converts a legacy snapshot file at path into the durable
// directory layout, crash-safely: the whole tree is staged beside the
// file, the file is removed, and the staging directory renamed into
// place. Interruption anywhere leaves either the untouched file or a
// resumable staging tree.
func migrateLegacy(fs iofs.FS, path string) error {
	img, err := fs.ReadFile(path)
	if err != nil {
		return err
	}
	store, err := vstore.LoadAnyBytes(img)
	if err != nil {
		return fmt.Errorf("bond: migrate %s: %w", path, err)
	}
	tmp := path + migratingSuffix
	if err := fs.RemoveAll(tmp); err != nil {
		return err
	}
	if err := initDurableDir(fs, tmp, store, store.PlannerStats()); err != nil {
		return err
	}
	if err := fs.Remove(path); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(filepath.Dir(path))
}

// openDurableDir recovers the committed checkpoint, replays the WAL
// tail, truncates any torn record, and hands back a live collection
// appending to the recovered log.
func openDurableDir(fs iofs.FS, dir string, opts DurableOptions) (*Collection, error) {
	ropts := vstore.RecoverOptions{DisableMmap: opts.DisableMmap || os.Getenv("BOND_NO_MMAP") != ""}
	store, m, err := vstore.RecoverDirOpts(fs, dir, ropts)
	if errors.Is(err, vstore.ErrNoManifest) {
		// A half-created directory (crash before the first checkpoint
		// committed): nothing was ever acknowledged, so initializing
		// fresh is the correct recovery — when the caller can tell us the
		// shape.
		if opts.Dims < 1 {
			return nil, fmt.Errorf("bond: open durable %s: %w (set DurableOptions.Dims to create)", dir, os.ErrNotExist)
		}
		fresh := vstore.NewSegmented(opts.Dims, opts.SegmentSize)
		if ierr := initDurableDir(fs, dir, fresh, nil); ierr != nil {
			return nil, ierr
		}
		store, m, err = vstore.RecoverDirOpts(fs, dir, ropts)
	}
	if err != nil {
		return nil, err
	}
	vstore.CleanDir(fs, dir, m)

	// Replay consecutive WAL files from the manifest's sequence: more
	// than one exists only when a crash interrupted a checkpoint after
	// its rotation. A torn or corrupt record ends the replay — and
	// invalidates everything after it, including later files.
	replaySeq := m.WALSeq
	var lastGood, lastRecs, lastLen int64
	lastFound := false
	for seq := m.WALSeq; ; seq++ {
		data, rerr := fs.ReadFile(filepath.Join(dir, vstore.WALFileName(seq)))
		if rerr != nil {
			if errors.Is(rerr, os.ErrNotExist) {
				break
			}
			return nil, rerr
		}
		replaySeq = seq
		recs, good, derr := wal.DecodeAll(data)
		for _, rec := range recs {
			if aerr := applyRecord(store, rec); aerr != nil {
				return nil, fmt.Errorf("bond: replay %s: %w", vstore.WALFileName(seq), aerr)
			}
		}
		lastFound, lastGood, lastRecs, lastLen = true, good, int64(len(recs)), int64(len(data))
		if derr != nil || good < int64(len(data)) {
			// Records in any later WAL were written on top of state this
			// file no longer reproduces; they were never durable as a
			// consistent prefix, so drop them.
			for later := seq + 1; ; later++ {
				if rmErr := fs.Remove(filepath.Join(dir, vstore.WALFileName(later))); rmErr != nil {
					break
				}
			}
			break
		}
	}

	// Reuse the replay's decode instead of re-reading the file: on a big
	// log that halves the open's I/O.
	walPath := filepath.Join(dir, vstore.WALFileName(replaySeq))
	var w *wal.Writer
	if lastFound {
		w, err = wal.OpenAppendAt(fs, walPath, lastGood, lastRecs, lastLen)
	} else {
		w, err = wal.Create(fs, walPath)
	}
	if err != nil {
		return nil, err
	}
	c := &Collection{
		store: store,
		model: plan.LoadModel(store.PlannerStats()),
		dur: &durability{
			fs:     fs,
			dir:    dir,
			policy: opts.Fsync,
			w:      w,
			walSeq: replaySeq,
		},
	}
	if opts.Fsync == FsyncInterval {
		c.dur.stop = make(chan struct{})
		c.dur.done = make(chan struct{})
		go c.syncLoop(opts.SyncEvery)
	}
	return c, nil
}

// applyRecord replays one logged mutation onto the store. Mutations were
// validated before they were logged, so a record the current state
// cannot accept means the log does not belong to this checkpoint —
// corruption, reported as an error rather than a panic.
func applyRecord(s *vstore.SegStore, rec wal.Record) error {
	switch rec.Type {
	case wal.TypeAdd, wal.TypeAddBatch:
		for _, v := range rec.Vectors {
			if len(v) != s.Dims() {
				return fmt.Errorf("logged vector has %d dims, store has %d", len(v), s.Dims())
			}
		}
		if len(rec.Vectors) > 0 {
			s.AppendBatch(rec.Vectors)
		}
	case wal.TypeDelete:
		if rec.ID >= uint64(s.Len()) {
			return fmt.Errorf("logged delete of id %d outside [0,%d)", rec.ID, s.Len())
		}
		s.Delete(int(rec.ID))
	case wal.TypeCompact:
		s.Compact(rec.Ratio)
	case wal.TypeSeal:
		s.SealActive()
	case wal.TypeRecluster:
		return applyRecluster(s, rec.K, rec.Seed)
	default:
		return fmt.Errorf("unknown record type %d", rec.Type)
	}
	return nil
}

// syncLoop is the FsyncInterval background flusher.
func (c *Collection) syncLoop(every time.Duration) {
	defer close(c.dur.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-c.dur.stop:
			return
		case <-t.C:
			c.mu.RLock()
			w, closed := c.dur.w, c.dur.closed
			c.mu.RUnlock()
			if closed {
				return
			}
			_ = w.Sync()
		}
	}
}

// Durable reports whether the collection was opened with OpenDurable and
// logs its mutations.
func (c *Collection) Durable() bool { return c.dur != nil }

// logMutation appends one record to the WAL — fsyncing first under
// FsyncAlways — before the in-memory mutation it describes is applied.
// Callers hold the write lock and must not mutate state when it errors.
func (c *Collection) logMutation(rec wal.Record) error {
	if c.dur == nil {
		return nil
	}
	if c.dur.closed {
		return ErrClosed
	}
	return c.dur.w.Append(rec, c.dur.policy == FsyncAlways)
}

// AddDurable is Add returning the durability error instead of
// panicking: the vector is appended and its id returned only once the
// WAL accepted (and, under FsyncAlways, fsynced) the record. On error
// the collection is unchanged and the write unacknowledged.
func (c *Collection) AddDurable(v []float64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(v) != c.store.Dims() {
		panic(fmt.Sprintf("bond: vector has %d dims, collection has %d", len(v), c.store.Dims()))
	}
	if err := c.logMutation(wal.Record{Type: wal.TypeAdd, Vectors: [][]float64{v}}); err != nil {
		return 0, err
	}
	c.invalidatePlanCache()
	return c.store.Append(v), nil
}

// AddBatchDurable is AddBatch returning the durability error instead of
// panicking. The batch is logged as one atomic record: after a crash
// either every vector of the batch is recovered or none is.
func (c *Collection) AddBatchDurable(vectors [][]float64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, v := range vectors {
		if len(v) != c.store.Dims() {
			panic(fmt.Sprintf("bond: vector %d has %d dims, collection has %d", i, len(v), c.store.Dims()))
		}
	}
	if len(vectors) == 0 {
		return c.store.Len(), nil
	}
	if err := c.logMutation(wal.Record{Type: wal.TypeAddBatch, Vectors: vectors}); err != nil {
		return 0, err
	}
	c.invalidatePlanCache()
	return c.store.AppendBatch(vectors), nil
}

// TryDeleteDurable is TryDelete returning the durability error as well:
// ok reports whether id was inside the collection, err whether the
// tombstone was durably logged.
func (c *Collection) TryDeleteDurable(id int) (ok bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id < 0 || id >= c.store.Len() {
		return false, nil
	}
	if err := c.logMutation(wal.Record{Type: wal.TypeDelete, ID: uint64(id)}); err != nil {
		return false, err
	}
	c.invalidatePlanCache()
	c.store.Delete(id)
	return true, nil
}

// CompactRatioDurable is CompactRatio returning the durability error
// instead of panicking. Compaction is logged as a single record (its id
// remapping is a deterministic function of the collection state, so
// replay reproduces it exactly).
func (c *Collection) CompactRatioDurable(minRatio float64) ([]int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.logMutation(wal.Record{Type: wal.TypeCompact, Ratio: minRatio}); err != nil {
		return nil, err
	}
	c.invalidatePlanCache()
	lenBefore := c.store.Len()
	mapping := c.store.Compact(minRatio)
	// Cost-model hygiene: compaction destroys the segments it rewrites, so
	// decay the EWMA feedback toward its priors in proportion to the slots
	// dropped (the rewritten fraction of the collection). Live-path only,
	// like the model itself — replay does not decay.
	if lenBefore > 0 {
		c.model.DecayForRewrite(float64(lenBefore-c.store.Len()) / float64(lenBefore))
	}
	return mapping, nil
}

// SealActiveDurable is SealActive returning the durability error instead
// of panicking.
func (c *Collection) SealActiveDurable() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.logMutation(wal.Record{Type: wal.TypeSeal}); err != nil {
		return err
	}
	c.invalidatePlanCache()
	c.store.SealActive()
	return nil
}

// Checkpoint writes an incremental checkpoint and truncates the WAL: the
// log is fsynced and rotated under the write lock, then — with queries
// and mutations flowing again — new sealed segments are written (once
// each, ever), the active segment and manifest are replaced atomically,
// and the old log is deleted. A crash at any point recovers to a state
// at least as new as the rotation. Returns ErrNotDurable on a
// non-durable collection.
func (c *Collection) Checkpoint() error {
	if c.dur == nil {
		return ErrNotDurable
	}
	c.dur.ckptMu.Lock()
	defer c.dur.ckptMu.Unlock()
	return c.checkpointLocked()
}

// checkpointLocked is Checkpoint's body; the caller holds ckptMu (so a
// snapshot capture can read the freshly committed files before another
// checkpoint can replace them).
func (c *Collection) checkpointLocked() error {
	c.mu.Lock()
	if c.dur.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	// Sync before rotating: records in the old log must be durable
	// before any record lands in the new one, or a power loss could
	// recover the new log's records on top of a torn old log — a
	// non-prefix state.
	if err := c.dur.w.Sync(); err != nil {
		// The log is failing (ENOSPC, I/O error — the Writer's error is
		// sticky, so every mutation since the first failure was rejected
		// and unapplied). Recover by checkpointing the in-memory state —
		// which is exactly the successfully-logged prefix — past the
		// broken log, unwedging the collection without a restart.
		defer c.mu.Unlock()
		return c.recoverFromLogFailure(err)
	}
	newSeq := c.dur.walSeq + 1
	nw, err := wal.Create(c.dur.fs, filepath.Join(c.dur.dir, vstore.WALFileName(newSeq)))
	if err != nil {
		c.mu.Unlock()
		return err
	}
	old := c.dur.w
	c.recordRotationLocked(c.dur.walSeq, old.Size())
	c.dur.w, c.dur.walSeq = nw, newSeq
	cs := c.store.CaptureCheckpoint(newSeq, c.model.Marshal())
	c.mu.Unlock()

	_ = old.Close()
	if err := vstore.WriteCheckpoint(c.dur.fs, c.dur.dir, cs); err != nil {
		// The rotation already happened; recovery replays the old WAL and
		// then the new one, so state is safe — the next checkpoint simply
		// starts from a later sequence.
		return err
	}
	c.mu.Lock()
	c.dur.checkpoints++
	c.dur.lastCkptUnix = time.Now().Unix()
	c.mu.Unlock()
	return nil
}

// recoverFromLogFailure is Checkpoint's slow path when the current WAL
// writer has failed: a blocking checkpoint that supersedes the broken
// log. It must run with the write lock held for its whole duration —
// the failed log may end in a phantom record (written but never
// acknowledged, because its fsync failed), so no mutation may land in a
// successor log until the manifest commit makes the failed log
// irrelevant; otherwise a crash before the commit could replay the
// phantom under records that assumed it never happened.
func (c *Collection) recoverFromLogFailure(cause error) error {
	newSeq := c.dur.walSeq + 1
	cs := c.store.CaptureCheckpoint(newSeq, c.model.Marshal())
	if err := vstore.WriteCheckpoint(c.dur.fs, c.dur.dir, cs); err != nil {
		return fmt.Errorf("bond: checkpoint past failed log (%v): %w", cause, err)
	}
	// The manifest now names newSeq; a missing wal-<newSeq> reads as an
	// empty log, so a crash between the commit and the Create below is
	// safe, and so is a Create failure (the next Checkpoint retries with
	// the same sequence).
	nw, err := wal.Create(c.dur.fs, filepath.Join(c.dur.dir, vstore.WALFileName(newSeq)))
	if err != nil {
		return fmt.Errorf("bond: new log after failed log (%v): %w", cause, err)
	}
	_ = c.dur.w.Close()
	// Delete the failed log (best-effort) and record no rotation
	// endpoint for it: it may end in a phantom record, so a replica
	// tailing it must get "gone" and re-bootstrap rather than be served
	// bytes that were never acknowledged.
	_ = c.dur.fs.Remove(filepath.Join(c.dur.dir, vstore.WALFileName(c.dur.walSeq)))
	c.dur.w, c.dur.walSeq = nw, newSeq
	c.dur.checkpoints++
	c.dur.lastCkptUnix = time.Now().Unix()
	return nil
}

// recordRotationLocked remembers where a rotated-out WAL generation
// ended, pruning the memory to the most recent few; the caller holds
// the write lock.
func (c *Collection) recordRotationLocked(seq uint64, end int64) {
	if c.dur.rotations == nil {
		c.dur.rotations = make(map[uint64]int64)
	}
	c.dur.rotations[seq] = end
	for s := range c.dur.rotations {
		if s+8 <= seq {
			delete(c.dur.rotations, s)
		}
	}
}

// Close stops the interval-sync loop (if any), fsyncs the WAL so a clean
// shutdown is durable under every policy, releases the log, and unmaps
// any memory-mapped sealed segment files. Further mutations fail with
// ErrClosed. Reads keep working on a heap-backed collection; on a
// collection with mapped segments their columns are gone with the
// mappings, so queries fail with ErrClosed too (the unmap happens under
// the write lock, so in-flight queries finish first). Close on a
// non-durable collection is a no-op.
func (c *Collection) Close() error {
	if c.dur == nil {
		return nil
	}
	c.dur.stopOnce.Do(func() {
		if c.dur.stop != nil {
			close(c.dur.stop)
			<-c.dur.done
		}
	})
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dur.closed {
		return nil
	}
	c.dur.closed = true
	serr := c.dur.w.Sync()
	cerr := c.dur.w.Close()
	merr := c.store.ReleaseMappings()
	if serr != nil {
		return serr
	}
	if cerr != nil {
		return cerr
	}
	return merr
}

// ProbeWAL verifies the collection can still durably acknowledge
// mutations: its write-ahead log is open and an fsync of it succeeds
// (the WAL writer's error is sticky, so a log that already failed —
// ENOSPC, yanked disk — surfaces here immediately). It is the substance
// behind a serving layer's readiness probe: a nil return means the next
// AddDurable will be able to append and sync. Non-durable collections
// are trivially ready; a closed collection reports ErrClosed.
func (c *Collection) ProbeWAL() error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.dur == nil {
		return nil
	}
	if c.dur.closed {
		return ErrClosed
	}
	// Sync under the read lock matches the interval sync loop's locking
	// contract: Append and rotation hold the write lock, so the writer
	// cannot change under us.
	return c.dur.w.Sync()
}

// WALStats returns the durability gauges, with ok=false for a collection
// not opened with OpenDurable.
func (c *Collection) WALStats() (DurabilityStats, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.walStatsLocked()
}

// walStatsLocked assembles DurabilityStats; callers hold at least the
// read lock.
func (c *Collection) walStatsLocked() (DurabilityStats, bool) {
	if c.dur == nil {
		return DurabilityStats{}, false
	}
	return DurabilityStats{
		Fsync:              c.dur.policy.String(),
		WALSeq:             c.dur.walSeq,
		WALBytes:           c.dur.w.Size(),
		WALRecords:         c.dur.w.Records(),
		Checkpoints:        c.dur.checkpoints,
		LastCheckpointUnix: c.dur.lastCkptUnix,
	}, true
}

package bond

// Benchmarks regenerating every table and figure of the paper's evaluation
// (Sections 7 and 8), one benchmark per artefact, at a scaled-down
// configuration (use cmd/bondbench -full for paper scale). Each benchmark
// reports the figure's or table's headline quantity as a custom metric so
// `go test -bench` output doubles as a compact reproduction record.

import (
	"math/rand"
	"strconv"
	"testing"

	"bond/internal/bench"
	"bond/internal/core"
	"bond/internal/dataset"
	"bond/internal/multifeature"
	"bond/internal/quant"
	"bond/internal/seqscan"
	"bond/internal/streammerge"
	"bond/internal/vstore"
)

// benchCfg is the shared scaled-down configuration. Small enough for a
// 1-CPU CI box, large enough that every paper shape is visible.
func benchCfg() bench.Config {
	return bench.Config{N: 2000, Dims: 64, Queries: 5, K: 10, Step: 8, Seed: 42}
}

func lastY(f bench.Figure, label string) float64 {
	for _, s := range f.Series {
		if s.Label == label {
			return s.Y[len(s.Y)-1]
		}
	}
	return -1
}

// BenchmarkFig2DatasetStats regenerates Figure 2 (dataset statistics).
func BenchmarkFig2DatasetStats(b *testing.B) {
	var topMass float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig2DatasetStats(benchCfg())
		topMass = f.Series[1].Y[0]
	}
	b.ReportMetric(topMass, "top-bin-mass")
}

// BenchmarkFig4PruningHqHh regenerates Figure 4 (pruning of Hq and Hh).
func BenchmarkFig4PruningHqHh(b *testing.B) {
	var hq, hh float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig4PruningHqHh(benchCfg())
		hq = lastY(f, "Hq avg")
		hh = lastY(f, "Hh avg")
	}
	b.ReportMetric(hq, "Hq-final-cands")
	b.ReportMetric(hh, "Hh-final-cands")
}

// BenchmarkFig5PruningEqEv regenerates Figure 5 (pruning of Eq and Ev).
func BenchmarkFig5PruningEqEv(b *testing.B) {
	var eq, ev float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig5PruningEqEv(benchCfg())
		eq = lastY(f, "Eq avg")
		ev = lastY(f, "Ev avg")
	}
	b.ReportMetric(eq, "Eq-final-cands")
	b.ReportMetric(ev, "Ev-final-cands")
}

// BenchmarkFig6EffectOfK regenerates Figure 6 (effect of k).
func BenchmarkFig6EffectOfK(b *testing.B) {
	var k1, k1000 float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig6EffectOfK(benchCfg())
		k1 = lastY(f, "k=1")
		k1000 = lastY(f, "k=1000")
	}
	b.ReportMetric(k1, "k1-final-cands")
	b.ReportMetric(k1000, "k1000-final-cands")
}

// BenchmarkFig7Orderings regenerates Figure 7 (dimension orderings).
func BenchmarkFig7Orderings(b *testing.B) {
	var desc, asc float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig7Orderings(benchCfg())
		desc = lastY(f, "desc")
		asc = lastY(f, "asc")
	}
	b.ReportMetric(desc, "desc-final-cands")
	b.ReportMetric(asc, "asc-final-cands")
}

// BenchmarkFig8Dimensionality regenerates Figure 8 (dimensionality).
func BenchmarkFig8Dimensionality(b *testing.B) {
	var frac float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig8Dimensionality(benchCfg())
		frac = f.Series[len(f.Series)-1].Y[len(f.Series[0].Y)-1]
	}
	b.ReportMetric(frac, "highdim-final-frac")
}

// BenchmarkFig9Compression regenerates Figure 9 (compressed fragments).
func BenchmarkFig9Compression(b *testing.B) {
	var exact, comp float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig9Compression(benchCfg())
		exact = lastY(f, "exact")
		comp = lastY(f, "compressed")
	}
	b.ReportMetric(exact, "exact-final-cands")
	b.ReportMetric(comp, "compressed-final-cands")
}

// BenchmarkFig10DataSkew regenerates Figure 10 (data skew).
func BenchmarkFig10DataSkew(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	var t0, t2 float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig10DataSkew(cfg)
		t0 = lastY(f, "theta=0.0")
		t2 = lastY(f, "theta=2.0")
	}
	b.ReportMetric(t0, "theta0-final-cands")
	b.ReportMetric(t2, "theta2-final-cands")
}

// BenchmarkFig11WeightSkew regenerates Figure 11 (weight skew).
func BenchmarkFig11WeightSkew(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	var w0, w3 float64
	for i := 0; i < b.N; i++ {
		f := bench.Fig11WeightSkew(cfg)
		w0 = lastY(f, "wskew=0.0")
		w3 = lastY(f, "wskew=3.0")
	}
	b.ReportMetric(w0, "wskew0-final-cands")
	b.ReportMetric(w3, "wskew3-final-cands")
}

// BenchmarkTable3ResponseTime regenerates Table 3 (BOND vs sequential
// scan response times). The per-method timings are inside the table; the
// benchmark reports the headline speedup of Hq over SSH.
func BenchmarkTable3ResponseTime(b *testing.B) {
	cfg := benchCfg()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := bench.Table3ResponseTimes(cfg)
		var hq, ssh float64
		for _, row := range t.Rows {
			switch row[0] {
			case "Hq":
				hq = parseF(row[3])
			case "SSH":
				ssh = parseF(row[3])
			}
		}
		if hq > 0 {
			speedup = ssh / hq
		}
	}
	b.ReportMetric(speedup, "Hq-speedup-x")
}

// BenchmarkTable4VAFile regenerates Table 4 (compressed BOND vs VA-File).
func BenchmarkTable4VAFile(b *testing.B) {
	cfg := benchCfg()
	var speedup float64
	for i := 0; i < b.N; i++ {
		t := bench.Table4Approximations(cfg)
		var bond, va float64
		for _, row := range t.Rows {
			switch row[0] {
			case "filter Hq^c":
				bond = parseF(row[3])
			case "filter SSVA":
				va = parseF(row[3])
			}
		}
		if bond > 0 {
			speedup = va / bond
		}
	}
	b.ReportMetric(speedup, "filter-speedup-x")
}

// BenchmarkX1MultiFeature regenerates the Section 8.2 comparison of
// synchronized multi-feature search against stream merging.
func BenchmarkX1MultiFeature(b *testing.B) {
	cfg := benchCfg()
	cfg.N = 1000
	cfg.Queries = 3
	var avgSpeedup, minSpeedup float64
	for i := 0; i < b.N; i++ {
		t := bench.MultiFeatureComparison(cfg)
		for _, row := range t.Rows {
			switch row[0] {
			case "avg":
				avgSpeedup = parseF(row[3])
			case "min":
				minSpeedup = parseF(row[3])
			}
		}
	}
	b.ReportMetric(avgSpeedup, "avg-speedup-pct")
	b.ReportMetric(minSpeedup, "min-speedup-pct")
}

// BenchmarkAblationStepM sweeps the pruning granularity (Section 5.2).
func BenchmarkAblationStepM(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	for i := 0; i < b.N; i++ {
		bench.AblationStepM(cfg)
	}
}

// BenchmarkAblationBitmapSwitch sweeps the MIL bitmap switch (Section 6.1).
func BenchmarkAblationBitmapSwitch(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	for i := 0; i < b.N; i++ {
		bench.AblationBitmapSwitch(cfg)
	}
}

// BenchmarkAblationAbandonScan reproduces the footnote-6 comparison.
func BenchmarkAblationAbandonScan(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	for i := 0; i < b.N; i++ {
		bench.AblationAbandonScan(cfg)
	}
}

// --- Micro-benchmarks of the search primitives themselves. ---

type microFixture struct {
	vectors [][]float64
	store   *vstore.Store
	query   []float64
}

var micro *microFixture

func microSetup() *microFixture {
	if micro == nil {
		vs := dataset.CorelLike(10000, 64, 7)
		micro = &microFixture{vectors: vs, store: vstore.FromVectors(vs), query: vs[17]}
	}
	return micro
}

func BenchmarkSearchHq(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Search(f.store, f.query, core.Options{K: 10, Criterion: core.Hq}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchHh(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Search(f.store, f.query, core.Options{K: 10, Criterion: core.Hh}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchEv(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Search(f.store, f.query, core.Options{K: 10, Criterion: core.Ev}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSeqScanSSH(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqscan.SearchHistogram(f.vectors, f.query, 10)
	}
}

func BenchmarkSeqScanSSE(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seqscan.SearchEuclidean(f.vectors, f.query, 10)
	}
}

func BenchmarkSearchMILEngine(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SearchMIL(f.store, f.query, core.MILOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMultiFeatureSync(b *testing.B) {
	v1 := dataset.CorelLike(2000, 32, 3)
	v2 := dataset.CorelLike(2000, 64, 4)
	features := []multifeature.Feature{
		{Store: vstore.FromVectors(v1), Query: v1[5], Weight: 1},
		{Store: vstore.FromVectors(v2), Query: v2[5], Weight: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multifeature.Search(features, multifeature.Options{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamMerge(b *testing.B) {
	v1 := dataset.CorelLike(2000, 32, 3)
	v2 := dataset.CorelLike(2000, 64, 4)
	features := []multifeature.Feature{
		{Store: vstore.FromVectors(v1), Query: v1[5], Weight: 1},
		{Store: vstore.FromVectors(v2), Query: v2[5], Weight: 1},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := streammerge.Search(features, 10, multifeature.WeightedAvg); err != nil {
			b.Fatal(err)
		}
	}
}

func parseF(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0
	}
	return v
}

// BenchmarkX2Usefulness regenerates the Section 9 usefulness validation.
func BenchmarkX2Usefulness(b *testing.B) {
	cfg := benchCfg()
	var spread float64
	for i := 0; i < b.N; i++ {
		t := bench.UsefulnessValidation(cfg)
		first := parseF(t.Rows[0][2])
		last := parseF(t.Rows[len(t.Rows)-1][2])
		spread = first - last
	}
	b.ReportMetric(spread, "scan-pct-spread")
}

// BenchmarkX3Clustering regenerates the Section 9 clustering experiment.
func BenchmarkX3Clustering(b *testing.B) {
	cfg := benchCfg()
	cfg.N = 1000
	var saved float64
	for i := 0; i < b.N; i++ {
		t := bench.ClusteringComparison(cfg)
		pruned := parseF(t.Rows[0][2])
		naive := parseF(t.Rows[1][2])
		if naive > 0 {
			saved = 100 * (1 - pruned/naive)
		}
	}
	b.ReportMetric(saved, "values-saved-pct")
}

// BenchmarkAblationAdaptiveStep compares fixed against adaptive m.
func BenchmarkAblationAdaptiveStep(b *testing.B) {
	cfg := benchCfg()
	cfg.Queries = 3
	for i := 0; i < b.N; i++ {
		bench.AblationAdaptiveStep(cfg)
	}
}

// BenchmarkSearchParallel measures the shard-parallel engine.
func BenchmarkSearchParallel(b *testing.B) {
	f := microSetup()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SearchParallel(f.store, f.query, core.Options{K: 10, Criterion: core.Hq}, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchCompressedFilter measures the compressed filter phase.
func BenchmarkSearchCompressedFilter(b *testing.B) {
	f := microSetup()
	qs := f.store.Quantize(quant.NewUnit())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.FilterCompressed(f.store, qs, f.query, core.Options{K: 10, Criterion: core.Hq}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Segmented-store benchmarks -----------------------------------------

// clusterBlocks generates cluster-contiguous data: block b of perBlock
// vectors sits around its own random centre (the ingest-by-locality
// pattern segment synopses exploit).
func clusterBlocks(blocks, perBlock, dims int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, 0, blocks*perBlock)
	for bl := 0; bl < blocks; bl++ {
		ctr := make([]float64, dims)
		for d := range ctr {
			ctr[d] = rng.Float64()
		}
		for i := 0; i < perBlock; i++ {
			v := make([]float64, dims)
			for d := range v {
				x := ctr[d] + rng.NormFloat64()*0.02
				if x < 0 {
					x = 0
				}
				if x > 1 {
					x = 1
				}
				v[d] = x
			}
			out = append(out, v)
		}
	}
	return out
}

// BenchmarkSegmentSkipping compares BOND over a segmented collection whose
// boundaries align with data locality (segment synopses skip cold
// segments) against the same data in one flat segment (every search scans
// the full candidate set). Reported metrics: coefficients read per query
// and segments skipped.
func BenchmarkSegmentSkipping(b *testing.B) {
	const blocks, perBlock, dims, k = 20, 500, 64, 10
	vs := clusterBlocks(blocks, perBlock, dims, 99)
	queries := make([][]float64, 8)
	for i := range queries {
		queries[i] = vs[(i*blocks/len(queries))*perBlock+3]
	}
	opts := core.Options{K: k, Criterion: core.Ev, SkipRangeCheck: true}

	for _, cfg := range []struct {
		name    string
		segSize int
	}{
		{"segmented-skip", perBlock},
		{"flat-fullscan", len(vs) + 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			col := NewCollectionSegmented(vs, cfg.segSize)
			var scanned, skipped, searched int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				res, err := col.Search(q, opts)
				if err != nil {
					b.Fatal(err)
				}
				scanned += res.Stats.ValuesScanned
				skipped += int64(res.Stats.SegmentsSkipped)
				searched += int64(res.Stats.SegmentsSearched)
			}
			n := float64(b.N)
			b.ReportMetric(float64(scanned)/n, "values/query")
			b.ReportMetric(float64(skipped)/n, "segs-skipped/query")
			b.ReportMetric(float64(searched)/n, "segs-searched/query")
		})
	}
}

// BenchmarkCollectionSearchParallelSegments measures the per-segment
// parallel path on the facade.
func BenchmarkCollectionSearchParallelSegments(b *testing.B) {
	vs := dataset.CorelLike(20000, 64, 7)
	col := NewCollectionSegmented(vs, 2500)
	q := vs[17]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := col.SearchParallel(q, Options{K: 10, Criterion: Hq}, 8); err != nil {
			b.Fatal(err)
		}
	}
}

package bond

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// allocBudget is the steady-state allocation ceiling per Query: the
// returned result list and the backing array of its step logs. Everything
// else — plan, engine scratch, heaps, bound tables, candidate lists — is
// pooled per collection.
const allocBudget = 2

func allocTestCollection(t testing.TB, n, dims, segSize int) (*Collection, [][]float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	vectors := make([][]float64, n)
	for i := range vectors {
		v := make([]float64, dims)
		for d := range v {
			v[d] = rng.Float64()
		}
		vectors[i] = v
	}
	return NewCollectionSegmented(vectors, segSize), vectors
}

// TestQueryAllocationBudget pins the hot-path pooling contract: after
// warm-up, Collection.Query performs at most allocBudget allocations per
// call on every access path, for both a histogram and a Euclidean
// criterion.
func TestQueryAllocationBudget(t *testing.T) {
	col, vectors := allocTestCollection(t, 1200, 24, 300)

	type pathCase struct {
		strategy Strategy
		crit     Criterion
	}
	var cases []pathCase
	for _, strat := range []Strategy{StrategyAuto, StrategyBOND, StrategyCompressed, StrategyVAFile, StrategyExact} {
		cases = append(cases, pathCase{strat, Hq}, pathCase{strat, Eq})
	}
	cases = append(cases, pathCase{StrategyMIL, Hq})

	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v_%v", tc.crit, tc.strategy), func(t *testing.T) {
			spec := QuerySpec{Query: vectors[7], K: 10, Criterion: tc.crit, Strategy: tc.strategy}
			// Warm the pools, the lazy codes, and the buffer high-water marks.
			for i := 0; i < 8; i++ {
				if _, err := col.Query(spec); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := col.Query(spec); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > allocBudget {
				t.Errorf("Query %v/%v: %.1f allocs/op, budget %d",
					tc.crit, tc.strategy, allocs, allocBudget)
			}
		})
	}
}

// TestQueryBatchAllocationPerQuery checks that QueryBatch stays within a
// small per-query allocation budget too: the per-query results (list +
// steps) plus the batch's own fixed setup amortized across its queries.
func TestQueryBatchAllocationPerQuery(t *testing.T) {
	col, vectors := allocTestCollection(t, 1200, 24, 300)
	specs := make([]QuerySpec, 32)
	for i := range specs {
		specs[i] = QuerySpec{Query: vectors[i], K: 10}
	}
	for i := 0; i < 4; i++ {
		if _, err := col.QueryBatch(specs); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := col.QueryBatch(specs); err != nil {
			t.Fatal(err)
		}
	})
	perQuery := allocs / float64(len(specs))
	// Budget: the two per-query result allocations plus one for batch
	// bookkeeping (result slice, feedback block, goroutine stacks)
	// amortized over the batch.
	if perQuery > allocBudget+1 {
		t.Errorf("QueryBatch: %.2f allocs per query (%.0f total), budget %d",
			perQuery, allocs, allocBudget+1)
	}
}

// TestQueryBatchMatchesQuery pins QueryBatch's contract: positionally
// aligned results identical to issuing each spec through Query.
func TestQueryBatchMatchesQuery(t *testing.T) {
	col, vectors := allocTestCollection(t, 900, 16, 200)
	var specs []QuerySpec
	for i, crit := range []Criterion{Hq, Eq, Ev, Hh} {
		for _, strat := range []Strategy{StrategyAuto, StrategyBOND, StrategyExact} {
			specs = append(specs, QuerySpec{
				Query: vectors[13*i%len(vectors)], K: 3 + i, Criterion: crit, Strategy: strat,
			})
		}
	}
	batch, err := col.QueryBatch(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(batch), len(specs))
	}
	for i, spec := range specs {
		single, err := col.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch[i].Results) != len(single.Results) {
			t.Fatalf("spec %d: batch %d results, single %d", i, len(batch[i].Results), len(single.Results))
		}
		for r := range single.Results {
			b, s := batch[i].Results[r], single.Results[r]
			// IDs must match exactly; scores within an ulp-scale tolerance
			// (an Auto spec may legitimately take a different access path
			// than the later single query, as the model kept learning).
			diff := b.Score - s.Score
			if b.ID != s.ID || diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("spec %d rank %d: batch %+v, single %+v", i, r, b, s)
			}
		}
	}

	// An invalid spec aborts the batch with its index in the error.
	if _, err := col.QueryBatch([]QuerySpec{{Query: vectors[0], K: 0}}); err == nil {
		t.Fatal("expected error for K=0 spec")
	}
}

// TestQueryBatchConcurrentWithWriters drives QueryBatch against concurrent
// Add, Delete, and Compact traffic; run under -race this pins the
// concurrency contract of the batch path (one consistent snapshot per
// batch, writers serialized).
func TestQueryBatchConcurrentWithWriters(t *testing.T) {
	col, vectors := allocTestCollection(t, 800, 12, 200)
	specs := make([]QuerySpec, 16)
	for i := range specs {
		specs[i] = QuerySpec{Query: vectors[i], K: 5}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(9))
		for {
			select {
			case <-stop:
				return
			default:
			}
			switch rng.Intn(3) {
			case 0:
				v := make([]float64, 12)
				for d := range v {
					v[d] = rng.Float64()
				}
				col.Add(v)
			case 1:
				col.Delete(rng.Intn(800))
			case 2:
				col.CompactRatio(0.5)
			}
		}
	}()

	for iter := 0; iter < 30; iter++ {
		res, err := col.QueryBatch(specs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range res {
			if len(res[i].Results) == 0 {
				t.Fatalf("iter %d query %d: empty result", iter, i)
			}
		}
	}
	close(stop)
	wg.Wait()
}

package bond

import (
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
)

// buildMmapFixture checkpoints a durable collection of n clustered
// vectors (plus tombstones) into a fresh directory on the real
// filesystem — mappings need real files — and returns the directory,
// the ingested vectors, and the deleted-id set.
func buildMmapFixture(t testing.TB, n, dims, segSize int, seed int64) (string, [][]float64, map[int]bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]float64, 0, n)
	center := make([]float64, dims)
	for i := 0; i < n; i++ {
		if i%segSize == 0 {
			for d := range center {
				center[d] = rng.Float64()
			}
		}
		v := make([]float64, dims)
		for d := range v {
			x := center[d] + 0.08*(rng.Float64()-0.5)
			v[d] = math.Min(math.Max(x, 0), 1)
		}
		vectors = append(vectors, v)
	}

	dir := filepath.Join(t.TempDir(), "col.bond")
	col, err := OpenDurable(dir, DurableOptions{Dims: dims, SegmentSize: segSize, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := col.AddBatchDurable(vectors); err != nil {
		t.Fatal(err)
	}
	deleted := map[int]bool{}
	for i := 0; i < n/25; i++ {
		id := rng.Intn(n)
		ok, err := col.TryDeleteDurable(id)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			deleted[id] = true
		}
	}
	if err := col.SealActiveDurable(); err != nil {
		t.Fatal(err)
	}
	if err := col.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, vectors, deleted
}

// openMmapBacked opens the fixture memory-mapped and fails the test if
// the platform quietly fell back to the heap — the parity below must
// actually exercise kernels over mapped columns.
func openMmapBacked(t testing.TB, dir string) *Collection {
	t.Helper()
	col, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st := col.StatsSnapshot(); st.MappedBytes == 0 {
		col.Close()
		t.Skip("platform cannot memory-map segment files")
	}
	return col
}

// TestMmapOracleParity pins the backing-transparency contract of the
// mmap tentpole: the same durable directory opened memory-mapped and
// heap-decoded returns bit-identical results — same ids, same float64
// score bits — on every access path, and both agree with the
// sequential-scan oracle. With AVX2 present this covers the SIMD
// kernels over mapped columns; the purego CI leg runs the identical
// test over the scalar kernels, and short segments exercise the mixed
// vector-head/scalar-tail dispatch either way.
func TestMmapOracleParity(t *testing.T) {
	dir, vectors, deleted := buildMmapFixture(t, 400, 13, 90, 51)

	mapped := openMmapBacked(t, dir)
	defer mapped.Close()
	heap, err := OpenDurable(dir, DurableOptions{DisableMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	if st := heap.StatsSnapshot(); st.MappedBytes != 0 {
		t.Fatalf("DisableMmap leg reports %d mapped bytes", st.MappedBytes)
	}

	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 8; trial++ {
		q := vectors[rng.Intn(len(vectors))]
		k := 1 + rng.Intn(12)
		for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
			want := oracleScan(vectors, deleted, q, k, crit.Distance())
			strategies := []Strategy{StrategyAuto, StrategyBOND, StrategyExact}
			if crit == Hq || crit == Eq {
				strategies = append(strategies, StrategyCompressed, StrategyVAFile)
			}
			if crit == Hq {
				strategies = append(strategies, StrategyMIL)
			}
			for _, strat := range strategies {
				spec := QuerySpec{Query: q, K: k, Criterion: crit, Strategy: strat}
				rm, err := mapped.Query(spec)
				if err != nil {
					t.Fatalf("%v/%v mapped: %v", crit, strat, err)
				}
				rh, err := heap.Query(spec)
				if err != nil {
					t.Fatalf("%v/%v heap: %v", crit, strat, err)
				}
				label := fmt.Sprintf("%v/%v", crit, strat)
				assertMatchesOracle(t, label+"/mapped", rm.Results, want)
				assertMatchesOracle(t, label+"/heap", rh.Results, want)
				if strat == StrategyAuto {
					// The two handles learn independent cost models, so
					// auto may legitimately execute different access paths
					// (ulp-scale score differences); oracle agreement above
					// is the whole contract here.
					continue
				}
				if len(rm.Results) != len(rh.Results) {
					t.Fatalf("%s: mapped %d results, heap %d", label, len(rm.Results), len(rh.Results))
				}
				for i := range rm.Results {
					m, h := rm.Results[i], rh.Results[i]
					if m.ID != h.ID || math.Float64bits(m.Score) != math.Float64bits(h.Score) {
						t.Fatalf("%s rank %d: mapped (%d, %x) vs heap (%d, %x) — backings diverge",
							label, i, m.ID, math.Float64bits(m.Score), h.ID, math.Float64bits(h.Score))
					}
				}
			}
		}
	}
}

// TestQueryAllocationBudgetMmap extends the hot-path pooling contract to
// memory-mapped durable collections: after warm-up, Query stays within
// allocBudget allocations per call on every access path when the columns
// it scans alias mapped segment files.
func TestQueryAllocationBudgetMmap(t *testing.T) {
	dir, vectors, _ := buildMmapFixture(t, 1200, 24, 300, 53)
	col := openMmapBacked(t, dir)
	defer col.Close()

	type pathCase struct {
		strategy Strategy
		crit     Criterion
	}
	var cases []pathCase
	for _, strat := range []Strategy{StrategyAuto, StrategyBOND, StrategyCompressed, StrategyVAFile, StrategyExact} {
		cases = append(cases, pathCase{strat, Hq}, pathCase{strat, Eq})
	}
	cases = append(cases, pathCase{StrategyMIL, Hq})

	for _, tc := range cases {
		t.Run(fmt.Sprintf("%v_%v", tc.crit, tc.strategy), func(t *testing.T) {
			spec := QuerySpec{Query: vectors[7], K: 10, Criterion: tc.crit, Strategy: tc.strategy}
			for i := 0; i < 8; i++ {
				if _, err := col.Query(spec); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(50, func() {
				if _, err := col.Query(spec); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > allocBudget {
				t.Errorf("Query %v/%v over mapped segments: %.1f allocs/op, budget %d",
					tc.crit, tc.strategy, allocs, allocBudget)
			}
		})
	}
}

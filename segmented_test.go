package bond

import (
	"path/filepath"
	"testing"

	"bond/internal/dataset"
	"bond/internal/vstore"
)

// multiSegCollection returns the same data as one collection per layout:
// many small segments versus a single segment.
func multiSegCollection(t *testing.T, n, dims int) ([][]float64, *Collection, *Collection) {
	t.Helper()
	vs := dataset.CorelLike(n, dims, 321)
	segmented := NewCollectionSegmented(vs, 100)
	single := NewCollectionSegmented(vs, n+1)
	return vs, segmented, single
}

// TestSegmentedFacadeMatchesSingleSegment drives every public search path
// on a multi-segment collection and demands byte-identical neighbor sets
// to a single-segment (flat-equivalent) collection.
func TestSegmentedFacadeMatchesSingleSegment(t *testing.T) {
	vs, segd, single := multiSegCollection(t, 650, 24)
	// "single" holds all data in one sealed segment (plus the empty
	// active tail a bulk load leaves behind).
	if segd.NumSegments() < 6 || single.NumSegments() != 2 {
		t.Fatalf("layouts: %d and %d segments", segd.NumSegments(), single.NumSegments())
	}
	for _, c := range []*Collection{segd, single} {
		c.Delete(13)
		c.Delete(444)
	}
	q := vs[77]
	for _, crit := range []Criterion{Hq, Hh, Eq, Ev} {
		opts := Options{K: 8, Criterion: crit}
		want, err := single.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := segd.Search(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%v rank %d: %+v, want %+v", crit, i, got.Results[i], want.Results[i])
			}
		}
		par, err := segd.SearchParallel(q, opts, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if par.Results[i] != want.Results[i] {
				t.Fatalf("%v parallel rank %d: %+v, want %+v", crit, i, par.Results[i], want.Results[i])
			}
		}
		p, err := segd.SearchProgressive(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		prog := p.Finish()
		for i := range want.Results {
			if prog.Results[i] != want.Results[i] {
				t.Fatalf("%v progressive rank %d: %+v, want %+v", crit, i, prog.Results[i], want.Results[i])
			}
		}
	}
	for _, crit := range []Criterion{Hq, Eq} {
		opts := Options{K: 8, Criterion: crit}
		want, err := single.SearchCompressed(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := segd.SearchCompressed(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Results {
			if got.Results[i] != want.Results[i] {
				t.Fatalf("%v compressed rank %d: %+v, want %+v", crit, i, got.Results[i], want.Results[i])
			}
		}
	}
	wantMIL, err := single.SearchMIL(q, MILOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	gotMIL, err := segd.SearchMIL(q, MILOptions{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantMIL.Results {
		if gotMIL.Results[i] != wantMIL.Results[i] {
			t.Fatalf("MIL rank %d: %+v, want %+v", i, gotMIL.Results[i], wantMIL.Results[i])
		}
	}
}

func TestFacadeSaveOpenSegmentedLayout(t *testing.T) {
	vs, segd, _ := multiSegCollection(t, 350, 16)
	segd.Delete(42)
	path := filepath.Join(t.TempDir(), "seg.bond")
	if err := segd.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumSegments() != segd.NumSegments() || got.Live() != segd.Live() {
		t.Fatalf("reloaded: %d segments, %d live; want %d, %d",
			got.NumSegments(), got.Live(), segd.NumSegments(), segd.Live())
	}
	q := vs[5]
	a, err := segd.Search(q, Options{K: 4, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.Search(q, Options{K: 4, Criterion: Ev})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Results {
		if a.Results[i] != b.Results[i] {
			t.Fatalf("result %d differs after segmented round trip", i)
		}
	}
}

func TestFacadeOpenLegacyFlatFile(t *testing.T) {
	vs := dataset.CorelLike(200, 12, 9)
	flat := vstore.FromVectors(vs)
	flat.Delete(7)
	path := filepath.Join(t.TempDir(), "legacy.bond")
	if err := flat.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	col, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if col.Len() != 200 || col.Live() != 199 {
		t.Fatalf("legacy open: len=%d live=%d", col.Len(), col.Live())
	}
	res, err := col.Search(vs[3], Options{K: 1, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID != 3 {
		t.Fatalf("self query returned %d", res.Results[0].ID)
	}
	// A legacy collection keeps working as a segmented one.
	col.Add(vs[0])
	if col.Len() != 201 {
		t.Fatal("append after legacy open failed")
	}
}

func TestFacadeCompactRatio(t *testing.T) {
	vs, segd, _ := multiSegCollection(t, 400, 8)
	// Heavy churn in the second segment only.
	for id := 100; id < 170; id++ {
		segd.Delete(id)
	}
	segd.Delete(0) // one tombstone in the first segment
	mapping := segd.CompactRatio(0.5)
	if mapping[0] != 0 {
		t.Fatalf("cold segment id moved: mapping[0] = %d", mapping[0])
	}
	if !segd.store.IsDeleted(0) {
		t.Fatal("cold tombstone should survive CompactRatio(0.5)")
	}
	if mapping[150] != -1 || mapping[170] != 100 {
		t.Fatalf("hot segment mapping: [150]=%d [170]=%d", mapping[150], mapping[170])
	}
	if segd.Len() != 330 {
		t.Fatalf("len after ratio compact = %d, want 330", segd.Len())
	}
	// Results must still be exact after partial compaction.
	res, err := segd.Search(vs[200], Options{K: 1, Criterion: Hq})
	if err != nil {
		t.Fatal(err)
	}
	if got := segd.Vector(res.Results[0].ID); len(got) != 8 {
		t.Fatal("vector fetch after compact failed")
	}
}

func TestFacadeSegmentSkippingReported(t *testing.T) {
	// Cluster-contiguous ingest: each 100-vector block around its own centre.
	blocks := 6
	var vs [][]float64
	base := dataset.CorelLike(blocks, 16, 5) // block centres
	for b := 0; b < blocks; b++ {
		for i := 0; i < 100; i++ {
			v := make([]float64, 16)
			copy(v, base[b])
			v[i%16] += 0.001 * float64(i%7)
			vs = append(vs, v)
		}
	}
	col := NewCollectionSegmented(vs, 100)
	res, err := col.Search(vs[10], Options{K: 3, Criterion: Ev, SkipRangeCheck: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SegmentsSkipped == 0 {
		t.Errorf("expected segment skipping on cluster-contiguous data; searched %d, skipped %d",
			res.Stats.SegmentsSearched, res.Stats.SegmentsSkipped)
	}
}

func TestFacadeMultiSearchSegmented(t *testing.T) {
	v1 := dataset.CorelLike(300, 16, 1)
	v2 := dataset.CorelLike(300, 24, 2)
	c1 := NewCollectionSegmented(v1, 64)
	c2 := NewCollectionSegmented(v2, 80) // deliberately different boundaries
	features := []Feature{
		c1.AsFeature(v1[0], 0.5),
		c2.AsFeature(v2[0], 0.5),
	}
	res, err := MultiSearch(features, MultiOptions{K: 3, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Results[0].ID != 0 {
		t.Errorf("best = %d, want 0 (self query)", res.Results[0].ID)
	}
	// The snapshot taken by AsFeature must be immune to later writes.
	c1.Add(v1[1])
	c1.Delete(0)
	res2, err := MultiSearch(features, MultiOptions{K: 3, Agg: WeightedAvg})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Results[0].ID != 0 {
		t.Errorf("snapshot violated: best = %d, want 0", res2.Results[0].ID)
	}
}

// TestExclusionSurvivesAppends pins the concurrency-contract fix: an
// exclusion bitmap sized before appends must keep working (new ids simply
// are not excluded) instead of crashing bitmap bounds checks.
func TestExclusionSurvivesAppends(t *testing.T) {
	vs := dataset.CorelLike(150, 8, 77)
	col := NewCollectionSegmented(vs, 50)
	excl := col.NewExclusion()
	excl.Set(0)
	col.Add(vs[0]) // collection now larger than the bitmap

	res, err := col.Search(vs[0], Options{K: 2, Criterion: Hq, Exclude: excl})
	if err != nil {
		t.Fatal(err)
	}
	// id 0 is excluded; the appended duplicate (id 150) is not.
	if res.Results[0].ID != 150 {
		t.Fatalf("best = %d, want the un-excluded duplicate 150", res.Results[0].ID)
	}
	if _, err := col.SearchCompressed(vs[0], Options{K: 2, Criterion: Hq, Exclude: excl}); err != nil {
		t.Fatalf("compressed with stale exclusion: %v", err)
	}
	if _, err := col.SearchMIL(vs[0], MILOptions{K: 2, Exclude: excl}); err != nil {
		t.Fatalf("MIL with stale exclusion: %v", err)
	}
	if _, err := col.SearchParallel(vs[0], Options{K: 2, Criterion: Hq, Exclude: excl}, 4); err != nil {
		t.Fatalf("parallel with stale exclusion: %v", err)
	}
}
